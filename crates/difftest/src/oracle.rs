//! The metamorphic oracle: a generated program and its reordered output
//! must be observationally equivalent.
//!
//! Per query, in every generated instantiation mode:
//!
//! * the **solution multisets** must be identical (answers may arrive in
//!   a different order, but none may appear, disappear, or change
//!   multiplicity);
//! * **side-effect output** must match as a line multiset (clause
//!   reordering of pure predicates legitimately permutes the solution
//!   order feeding a fixed caller, so the set of written lines — not
//!   their interleaving — is the invariant);
//! * the reordered run's **call counters** must stay within a
//!   configurable budget of the original's (a reordering that explodes
//!   cost is a bug even when the answers agree);
//! * **emission is byte-identical** across `--jobs 1/2/8`.
//!
//! Queries whose *original* run errors (an illegal instantiation mode,
//! e.g. arithmetic on an unbound variable) or truncates at the solution
//! cap are skipped and counted — the transformation makes no promise for
//! illegal modes. An error in the *reordered* run alone is a discrepancy.

use crate::generate::{Features, Query, TestCase};
use prolog_engine::{Engine, MachineConfig, QueryOutcome};
use prolog_syntax::{Body, SourceProgram};
use reorder::{ReorderConfig, Reorderer};
use std::fmt;

/// A deliberately broken reordering, used to validate that the harness
/// catches and shrinks real transformation bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectedBug {
    #[default]
    None,
    /// Swap the first two top-level goals of the first multi-goal clause,
    /// ignoring every legality restriction.
    SwapGoals,
    /// Delete the last clause of the first multi-clause predicate.
    DropClause,
    /// Swap the first two clauses of the first multi-clause predicate
    /// (unsound in the presence of cut or side effects).
    SwapClauses,
}

impl InjectedBug {
    pub fn parse(s: &str) -> Option<InjectedBug> {
        match s {
            "none" => Some(InjectedBug::None),
            "swap-goals" => Some(InjectedBug::SwapGoals),
            "drop-clause" => Some(InjectedBug::DropClause),
            "swap-clauses" => Some(InjectedBug::SwapClauses),
            _ => None,
        }
    }
}

/// Oracle tuning.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Call budget for the original run; queries that exceed it are
    /// skipped as too expensive.
    pub max_calls: u64,
    /// Activation-depth guard for both runs.
    pub max_depth: usize,
    /// Solution cap; queries that truncate are skipped (their prefixes
    /// are not order-comparable).
    pub max_solutions: usize,
    /// The reordered run may use at most
    /// `original_calls * budget_factor + budget_slack` calls.
    pub budget_factor: f64,
    pub budget_slack: u64,
    /// Also check that emission is byte-identical across jobs 1/2/8.
    pub check_jobs: bool,
    /// Corrupt the reordered program to validate the harness itself.
    pub inject: InjectedBug,
    /// Which engine runs both sides of the comparison (`--engine`).
    pub engine: prolog_engine::EngineKind,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_calls: 200_000,
            max_depth: 10_000,
            max_solutions: 2_000,
            budget_factor: 16.0,
            budget_slack: 10_000,
            check_jobs: true,
            inject: InjectedBug::None,
            engine: prolog_engine::EngineKind::default(),
        }
    }
}

/// One way a case can fail the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Discrepancy {
    /// Emitted program text differs between worker counts.
    JobsDivergence { jobs: usize },
    /// The reordered program raised an error on a query the original ran
    /// cleanly (includes blowing the call budget).
    ReorderedError { query: String, error: String },
    /// Solution multisets differ.
    SolutionMismatch {
        query: String,
        missing: Vec<String>,
        extra: Vec<String>,
    },
    /// Side-effect output differs as a line multiset.
    OutputMismatch {
        query: String,
        original: String,
        reordered: String,
    },
    /// Counters diverged past the budget without erroring.
    BudgetExceeded {
        query: String,
        original_calls: u64,
        reordered_calls: u64,
        budget: u64,
    },
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Discrepancy::JobsDivergence { jobs } => {
                write!(f, "emission differs between --jobs 1 and --jobs {jobs}")
            }
            Discrepancy::ReorderedError { query, error } => {
                write!(f, "reordered program errors on `{query}`: {error}")
            }
            Discrepancy::SolutionMismatch {
                query,
                missing,
                extra,
            } => {
                write!(
                    f,
                    "solution multiset mismatch on `{query}`: {} missing, {} extra",
                    missing.len(),
                    extra.len()
                )?;
                for m in missing.iter().take(3) {
                    write!(f, "\n  missing: {m}")?;
                }
                for e in extra.iter().take(3) {
                    write!(f, "\n  extra:   {e}")?;
                }
                Ok(())
            }
            Discrepancy::OutputMismatch { query, .. } => {
                write!(f, "side-effect output differs on `{query}`")
            }
            Discrepancy::BudgetExceeded {
                query,
                original_calls,
                reordered_calls,
                budget,
            } => write!(
                f,
                "counter divergence on `{query}`: {original_calls} calls originally, \
                 {reordered_calls} reordered (budget {budget})"
            ),
        }
    }
}

/// What running one case produced.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The first discrepancy found, if any.
    pub discrepancy: Option<Discrepancy>,
    /// Queries compared end to end.
    pub compared: usize,
    /// Queries skipped because the original run errored or truncated.
    pub skipped: usize,
    /// The case's construct coverage (copied from the generator).
    pub features: Features,
}

/// Budget for the reordered run, derived from the original's cost.
fn reordered_budget(config: &OracleConfig, original_calls: u64) -> u64 {
    (original_calls as f64 * config.budget_factor) as u64 + config.budget_slack
}

/// Multiset of output lines, order-insensitive.
fn line_multiset(s: &str) -> Vec<&str> {
    let mut lines: Vec<&str> = s.lines().collect();
    lines.sort_unstable();
    lines
}

/// Applies the injected bug to the reordered program.
fn corrupt(program: &mut SourceProgram, bug: InjectedBug) {
    match bug {
        InjectedBug::None => {}
        InjectedBug::SwapGoals => {
            for clause in program.clauses.iter_mut() {
                let conjuncts: Vec<Body> = clause.body.conjuncts().into_iter().cloned().collect();
                let calls = conjuncts
                    .iter()
                    .filter(|g| matches!(g, Body::Call(_)))
                    .count();
                if calls >= 2 {
                    let mut goals = conjuncts;
                    let first = goals
                        .iter()
                        .position(|g| matches!(g, Body::Call(_)))
                        .expect("counted above");
                    let second = goals
                        .iter()
                        .skip(first + 1)
                        .position(|g| matches!(g, Body::Call(_)))
                        .map(|i| i + first + 1)
                        .expect("counted above");
                    goals.swap(first, second);
                    clause.body = Body::conjoin(&goals);
                    return;
                }
            }
        }
        InjectedBug::DropClause => {
            if let Some(pred) = first_multi_clause_pred(program) {
                let last = program
                    .clauses
                    .iter()
                    .rposition(|c| c.pred_id() == pred)
                    .expect("predicate has clauses");
                program.clauses.remove(last);
            }
        }
        InjectedBug::SwapClauses => {
            if let Some(pred) = first_multi_clause_pred(program) {
                let idx: Vec<usize> = program
                    .clauses
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.pred_id() == pred)
                    .map(|(i, _)| i)
                    .collect();
                program.clauses.swap(idx[0], idx[1]);
            }
        }
    }
}

fn first_multi_clause_pred(program: &SourceProgram) -> Option<prolog_syntax::PredId> {
    program
        .predicates()
        .into_iter()
        .find(|&p| program.clauses_of(p).len() >= 2)
}

/// Runs the full oracle over one case.
pub fn run_case(case: &TestCase, config: &OracleConfig) -> CaseOutcome {
    let outcome = |discrepancy, compared, skipped| CaseOutcome {
        discrepancy,
        compared,
        skipped,
        features: case.features,
    };

    // Reorder serially; that run is the reference output.
    let reorder_config = ReorderConfig {
        jobs: 1,
        ..Default::default()
    };
    let result = Reorderer::new(&case.program, reorder_config).run();
    let mut reordered = result.program;

    // Emission determinism across worker counts.
    if config.check_jobs {
        let reference = prolog_syntax::pretty::program_to_string(&reordered);
        for jobs in [2, 8] {
            let parallel = Reorderer::new(
                &case.program,
                ReorderConfig {
                    jobs,
                    ..Default::default()
                },
            )
            .run();
            if prolog_syntax::pretty::program_to_string(&parallel.program) != reference {
                return outcome(Some(Discrepancy::JobsDivergence { jobs }), 0, 0);
            }
        }
    }

    corrupt(&mut reordered, config.inject);

    // Shrinking can orphan calls; undefined predicates must fail, not
    // abort, and identically so on both sides.
    let machine_config = MachineConfig {
        max_calls: config.max_calls,
        max_depth: config.max_depth,
        unknown_fails: true,
        engine: config.engine,
        ..Default::default()
    };
    let mut original_engine = Engine::with_config(machine_config);
    original_engine.load(&case.program);
    let mut reordered_engine = Engine::with_config(machine_config);
    reordered_engine.load(&reordered);

    let mut compared = 0;
    let mut skipped = 0;
    for query in &case.queries {
        match compare_query(query, &mut original_engine, &mut reordered_engine, config) {
            QueryVerdict::Agree => compared += 1,
            QueryVerdict::Skipped => skipped += 1,
            QueryVerdict::Diverged(d) => return outcome(Some(d), compared, skipped),
        }
    }
    outcome(None, compared, skipped)
}

enum QueryVerdict {
    Agree,
    Skipped,
    Diverged(Discrepancy),
}

fn compare_query(
    query: &Query,
    original_engine: &mut Engine,
    reordered_engine: &mut Engine,
    config: &OracleConfig,
) -> QueryVerdict {
    let label = query.to_string();

    original_engine.config.max_calls = config.max_calls;
    let original: QueryOutcome =
        match original_engine.query_term(&query.goal, &query.var_names, config.max_solutions) {
            Ok(out) if out.truncated => return QueryVerdict::Skipped,
            Ok(out) => out,
            // Illegal instantiation mode (or over budget): out of scope.
            Err(_) => return QueryVerdict::Skipped,
        };

    let budget = reordered_budget(config, original.counters.calls());
    reordered_engine.config.max_calls = budget;
    let reordered =
        match reordered_engine.query_term(&query.goal, &query.var_names, config.max_solutions) {
            Ok(out) => out,
            Err(e) => {
                return QueryVerdict::Diverged(Discrepancy::ReorderedError {
                    query: label,
                    error: e.to_string(),
                })
            }
        };

    let mut a = original.solution_set();
    let mut b = reordered.solution_set();
    if a != b {
        // Report the symmetric difference, as multisets.
        let missing = multiset_minus(&a, &b);
        let extra = multiset_minus(&b, &a);
        a.clear();
        b.clear();
        return QueryVerdict::Diverged(Discrepancy::SolutionMismatch {
            query: label,
            missing,
            extra,
        });
    }

    if line_multiset(&original.output) != line_multiset(&reordered.output) {
        return QueryVerdict::Diverged(Discrepancy::OutputMismatch {
            query: label,
            original: original.output.clone(),
            reordered: reordered.output.clone(),
        });
    }

    if reordered.counters.calls() > budget {
        return QueryVerdict::Diverged(Discrepancy::BudgetExceeded {
            query: label,
            original_calls: original.counters.calls(),
            reordered_calls: reordered.counters.calls(),
            budget,
        });
    }
    QueryVerdict::Agree
}

/// Multiset difference `a − b` over sorted string vectors.
pub(crate) fn multiset_minus(a: &[String], b: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i].clone());
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_case, GenConfig};

    #[test]
    fn multiset_difference() {
        let a = vec!["x".to_string(), "x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "z".to_string()];
        assert_eq!(multiset_minus(&a, &b), vec!["x", "y"]);
        assert_eq!(multiset_minus(&b, &a), vec!["z"]);
    }

    #[test]
    fn clean_pipeline_passes_first_seeds() {
        let gen_config = GenConfig::default();
        let oracle_config = OracleConfig {
            check_jobs: false, // covered by the determinism suite
            ..Default::default()
        };
        for seed in 0..25 {
            let case = generate_case(seed, &gen_config);
            let out = run_case(&case, &oracle_config);
            assert!(
                out.discrepancy.is_none(),
                "seed {seed}: {}\nprogram:\n{}",
                out.discrepancy.unwrap(),
                prolog_syntax::pretty::program_to_string(&case.program)
            );
            assert!(
                out.compared + out.skipped > 0,
                "seed {seed}: no queries ran"
            );
        }
    }

    #[test]
    fn dropped_clause_is_detected() {
        // A deliberately corrupted transformation must be caught on some
        // early seed (not necessarily every one — the dropped clause may
        // be unreachable from the queries).
        let gen_config = GenConfig::default();
        let oracle_config = OracleConfig {
            check_jobs: false,
            inject: InjectedBug::DropClause,
            ..Default::default()
        };
        let caught = (0..20).any(|seed| {
            let case = generate_case(seed, &gen_config);
            run_case(&case, &oracle_config).discrepancy.is_some()
        });
        assert!(
            caught,
            "20 seeds with a dropped clause: no discrepancy found"
        );
    }
}
