//! Bounded greedy shrinking of a failing case.
//!
//! The shrinker never re-generates — it only deletes, so every candidate
//! stays within the generator's well-formedness envelope (orphaned calls
//! are fine: the oracle runs with `unknown_fails` on both sides). Order
//! of attack:
//!
//! 1. reduce the workload to a single failing query;
//! 2. delete whole clauses, one at a time, while the discrepancy
//!    persists;
//! 3. delete top-level body goals the same way;
//! 4. repeat 2–3 to a fixpoint.
//!
//! Every candidate costs one oracle run (two engine loads plus the
//! reordering pipeline), so the total number of runs is capped; a capped
//! shrink still returns the smallest failing case found so far.

use crate::generate::TestCase;
use crate::oracle::{run_case, OracleConfig};
use prolog_syntax::Body;

/// What a shrink run did, for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShrinkStats {
    /// Oracle invocations spent (≤ the run budget).
    pub oracle_runs: usize,
    pub queries_removed: usize,
    pub clauses_removed: usize,
    pub goals_removed: usize,
    /// `true` if the run budget expired before reaching a fixpoint.
    pub budget_exhausted: bool,
}

struct Shrinker<'a> {
    config: &'a OracleConfig,
    max_runs: usize,
    stats: ShrinkStats,
}

impl Shrinker<'_> {
    /// One oracle run; `None` once the budget is spent.
    fn still_fails(&mut self, case: &TestCase) -> Option<bool> {
        if self.stats.oracle_runs >= self.max_runs {
            self.stats.budget_exhausted = true;
            return None;
        }
        self.stats.oracle_runs += 1;
        Some(run_case(case, self.config).discrepancy.is_some())
    }

    fn reduce_queries(&mut self, case: &mut TestCase) {
        // Prefer the strongest cut: a single query that fails alone.
        for i in 0..case.queries.len() {
            let mut candidate = case.clone();
            let query = candidate.queries.swap_remove(i);
            candidate.queries = vec![query];
            match self.still_fails(&candidate) {
                Some(true) => {
                    self.stats.queries_removed += case.queries.len() - 1;
                    *case = candidate;
                    return;
                }
                Some(false) => continue,
                None => return,
            }
        }
        // The failure needs several queries (e.g. a budget divergence
        // that only accumulates); fall back to one-at-a-time removal.
        let mut i = 0;
        while i < case.queries.len() && case.queries.len() > 1 {
            let mut candidate = case.clone();
            candidate.queries.remove(i);
            match self.still_fails(&candidate) {
                Some(true) => {
                    self.stats.queries_removed += 1;
                    *case = candidate;
                }
                Some(false) => i += 1,
                None => return,
            }
        }
    }

    /// One pass of clause deletion; returns `true` if anything shrank.
    fn clause_pass(&mut self, case: &mut TestCase) -> bool {
        let mut shrank = false;
        let mut i = 0;
        while i < case.program.clauses.len() {
            let mut candidate = case.clone();
            candidate.program.clauses.remove(i);
            match self.still_fails(&candidate) {
                Some(true) => {
                    self.stats.clauses_removed += 1;
                    *case = candidate;
                    shrank = true;
                }
                Some(false) => i += 1,
                None => return shrank,
            }
        }
        shrank
    }

    /// One pass of top-level goal deletion; returns `true` if anything
    /// shrank.
    fn goal_pass(&mut self, case: &mut TestCase) -> bool {
        let mut shrank = false;
        for ci in 0..case.program.clauses.len() {
            let mut gi = 0;
            loop {
                let goals: Vec<Body> = case.program.clauses[ci]
                    .body
                    .conjuncts()
                    .into_iter()
                    .cloned()
                    .collect();
                // A bare `true` body has nothing left to delete.
                if gi >= goals.len() || goals == [Body::True] {
                    break;
                }
                let mut remaining = goals;
                remaining.remove(gi);
                let mut candidate = case.clone();
                candidate.program.clauses[ci].body = Body::conjoin(&remaining);
                match self.still_fails(&candidate) {
                    Some(true) => {
                        self.stats.goals_removed += 1;
                        *case = candidate;
                        shrank = true;
                    }
                    Some(false) => gi += 1,
                    None => return shrank,
                }
            }
        }
        shrank
    }
}

/// Greedily minimises `case`, spending at most `max_runs` oracle runs.
///
/// The caller should only pass a case that currently fails; the shrinker
/// preserves "some discrepancy persists" rather than the exact original
/// discrepancy, which keeps minima small when one root cause shows up
/// through several queries.
pub fn shrink_case(
    case: &TestCase,
    config: &OracleConfig,
    max_runs: usize,
) -> (TestCase, ShrinkStats) {
    let mut shrinker = Shrinker {
        config,
        max_runs,
        stats: ShrinkStats::default(),
    };
    let mut best = case.clone();
    shrinker.reduce_queries(&mut best);
    loop {
        let mut shrank = shrinker.clause_pass(&mut best);
        shrank |= shrinker.goal_pass(&mut best);
        if !shrank || shrinker.stats.budget_exhausted {
            break;
        }
    }
    (best, shrinker.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_case, GenConfig};
    use crate::oracle::InjectedBug;

    #[test]
    fn shrinks_injected_bug_to_small_reproducer() {
        let gen_config = GenConfig::default();
        let oracle_config = OracleConfig {
            check_jobs: false,
            inject: InjectedBug::DropClause,
            ..Default::default()
        };
        // Find an early seed the injected bug actually breaks.
        let (seed, case) = (0..50)
            .map(|s| (s, generate_case(s, &gen_config)))
            .find(|(_, c)| run_case(c, &oracle_config).discrepancy.is_some())
            .expect("an injected dropped clause should break an early seed");
        let before = case.program.clauses.len();
        let (min, stats) = shrink_case(&case, &oracle_config, 400);
        assert!(
            run_case(&min, &oracle_config).discrepancy.is_some(),
            "seed {seed}: shrunk case no longer fails"
        );
        assert_eq!(
            min.queries.len(),
            1,
            "seed {seed}: should isolate one query"
        );
        assert!(
            min.program.clauses.len() < before,
            "seed {seed}: removed no clauses ({before} before)"
        );
        assert!(stats.oracle_runs > 0);
    }
}
