//! Persistence of shrunk reproducers.
//!
//! A corpus file is an ordinary Prolog source file whose `%` comment
//! header carries the metadata needed to replay it:
//!
//! ```text
//! % difftest reproducer
//! % seed: 42
//! % discrepancy: solution multiset mismatch on `p0_1(V0)`: 1 missing, 0 extra
//! % query: p0_1(V0)
//! f0(a).
//! p0_1(X0) :- f0(X0).
//! ```
//!
//! Because the header is comments, the file loads into any Prolog
//! tooling unchanged; [`load_case`] re-parses it into a [`TestCase`]
//! that the oracle (and the corpus replay test) can run directly.

use crate::generate::{Features, Query, TestCase};
use prolog_syntax::pretty::program_to_string;
use std::io;
use std::path::{Path, PathBuf};

/// Renders a case (plus the discrepancy that condemned it) to the corpus
/// file format.
pub fn render_case(case: &TestCase, discrepancy: &str) -> String {
    let mut out = String::new();
    out.push_str("% difftest reproducer\n");
    out.push_str(&format!("% seed: {}\n", case.seed));
    // The discrepancy may render over several lines; keep the headline.
    let headline = discrepancy.lines().next().unwrap_or("");
    out.push_str(&format!("% discrepancy: {headline}\n"));
    for query in &case.queries {
        out.push_str(&format!("% query: {query}\n"));
    }
    out.push_str(&program_to_string(&case.program));
    out
}

/// Writes a shrunk reproducer under `dir`, named after its seed.
/// Returns the path written.
pub fn save_case(dir: &Path, case: &TestCase, discrepancy: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{}.pl", case.seed));
    std::fs::write(&path, render_case(case, discrepancy))?;
    Ok(path)
}

/// Re-parses a corpus file into a runnable case.
///
/// Feature flags are not persisted (they only feed coverage counters),
/// so a loaded case reports `Features::default()`.
pub fn load_case(path: &Path) -> io::Result<TestCase> {
    let text = std::fs::read_to_string(path)?;
    parse_case(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

fn parse_case(text: &str) -> Result<TestCase, String> {
    let mut seed = 0u64;
    let mut queries = Vec::new();
    for line in text.lines() {
        let Some(comment) = line.trim().strip_prefix('%') else {
            continue;
        };
        let comment = comment.trim();
        if let Some(value) = comment.strip_prefix("seed:") {
            seed = value
                .trim()
                .parse()
                .map_err(|e| format!("bad seed line: {e}"))?;
        } else if let Some(value) = comment.strip_prefix("query:") {
            let (goal, var_names) = prolog_syntax::parse_term(value.trim())
                .map_err(|e| format!("bad query `{}`: {e}", value.trim()))?;
            queries.push(Query { goal, var_names });
        }
    }
    if queries.is_empty() {
        return Err("no `% query:` lines".to_string());
    }
    let program =
        prolog_syntax::parse_program(text).map_err(|e| format!("program does not parse: {e}"))?;
    Ok(TestCase {
        seed,
        program,
        queries,
        features: Features::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_case, GenConfig};

    #[test]
    fn render_then_parse_round_trips() {
        for seed in [0, 7, 42] {
            let case = generate_case(seed, &GenConfig::default());
            let text = render_case(&case, "example discrepancy\nwith detail");
            let loaded = parse_case(&text).expect("rendered case must parse");
            assert_eq!(loaded.seed, seed);
            assert_eq!(loaded.queries.len(), case.queries.len());
            for (a, b) in loaded.queries.iter().zip(&case.queries) {
                assert_eq!(a.to_string(), b.to_string(), "seed {seed}");
            }
            assert_eq!(
                program_to_string(&loaded.program),
                program_to_string(&case.program),
                "seed {seed}"
            );
        }
    }
}
