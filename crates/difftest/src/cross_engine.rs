//! Cross-engine oracle: tree-walking interpreter vs compiled engine.
//!
//! Where [`crate::backends`] compares two *evaluation strategies* (and
//! must bridge set-vs-multiset semantics), the compiled engine promises
//! something much stronger: it is the same SLD machine, so every
//! observable must match **exactly** — solutions in the same order,
//! identical `Counters`, identical per-predicate profile rows, the same
//! side-effect output bytes, the same truncation flag, and the same
//! error (engine errors compare structurally). There is no legitimate
//! divergence and therefore no skip category: any mismatch is a compiler
//! bug.

use crate::generate::{Query, TestCase};
use prolog_engine::{Counters, Engine, EngineKind, MachineConfig, QueryOutcome};
use std::fmt;

/// Cross-engine comparison budgets (mirrors [`crate::BackendConfig`]).
#[derive(Debug, Clone)]
pub struct EngineCompareConfig {
    /// Call budget per query; both engines must hit it at the same call.
    pub max_calls: u64,
    /// Activation-depth guard, likewise enforced identically.
    pub max_depth: usize,
    /// Solution cap; both engines must truncate at the same point.
    pub max_solutions: usize,
}

impl Default for EngineCompareConfig {
    fn default() -> Self {
        EngineCompareConfig {
            max_calls: 200_000,
            max_depth: 10_000,
            max_solutions: 2_000,
        }
    }
}

/// One way the engines can disagree. Each variant names the first
/// observable that differed; the comparison short-circuits, so a single
/// root cause reports once, not as a cascade.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineDiscrepancy {
    /// Different solutions, or the same solutions in a different order.
    Solutions {
        query: String,
        interp: Vec<String>,
        compiled: Vec<String>,
    },
    /// Same solutions but different work: call/unification counts drifted.
    Counters {
        query: String,
        interp: Counters,
        compiled: Counters,
    },
    /// Per-predicate call/backtrack attribution drifted.
    Profile { query: String, detail: String },
    /// Side-effect output (`write/1`, `nl/0`, …) differs.
    Output {
        query: String,
        interp: String,
        compiled: String,
    },
    /// One engine truncated at the solution cap, the other exhausted.
    Truncation {
        query: String,
        interp: bool,
        compiled: bool,
    },
    /// The engines returned different errors, or only one errored.
    Errors {
        query: String,
        interp: String,
        compiled: String,
    },
}

impl fmt::Display for EngineDiscrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineDiscrepancy::Solutions {
                query,
                interp,
                compiled,
            } => {
                write!(
                    f,
                    "engine solution mismatch on `{query}`: interp {} vs compiled {}",
                    interp.len(),
                    compiled.len()
                )?;
                for (i, (a, b)) in interp.iter().zip(compiled).enumerate() {
                    if a != b {
                        write!(f, "\n  first divergence at solution {i}: `{a}` vs `{b}`")?;
                        break;
                    }
                }
                Ok(())
            }
            EngineDiscrepancy::Counters {
                query,
                interp,
                compiled,
            } => write!(
                f,
                "engine counter mismatch on `{query}`: \
                 interp calls={}/{} unif={} vs compiled calls={}/{} unif={}",
                interp.user_calls,
                interp.builtin_calls,
                interp.unifications,
                compiled.user_calls,
                compiled.builtin_calls,
                compiled.unifications
            ),
            EngineDiscrepancy::Profile { query, detail } => {
                write!(f, "engine profile mismatch on `{query}`: {detail}")
            }
            EngineDiscrepancy::Output {
                query,
                interp,
                compiled,
            } => write!(
                f,
                "engine output mismatch on `{query}`: {:?} vs {:?}",
                interp, compiled
            ),
            EngineDiscrepancy::Truncation {
                query,
                interp,
                compiled,
            } => write!(
                f,
                "engine truncation mismatch on `{query}`: interp={interp} compiled={compiled}"
            ),
            EngineDiscrepancy::Errors {
                query,
                interp,
                compiled,
            } => write!(
                f,
                "engine error mismatch on `{query}`: interp {interp} vs compiled {compiled}"
            ),
        }
    }
}

/// What one cross-engine case produced.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    pub discrepancy: Option<EngineDiscrepancy>,
    /// Queries compared end to end (including ones where both engines
    /// returned the same error — identical failure is agreement here).
    pub compared: usize,
    /// Of those, queries where both engines errored identically.
    pub errors_agreed: usize,
}

fn engine_for(kind: EngineKind, case: &TestCase, config: &EngineCompareConfig) -> Engine {
    let mut engine = Engine::with_config(MachineConfig {
        engine: kind,
        max_calls: config.max_calls,
        max_depth: config.max_depth,
        unknown_fails: true,
        profile: true,
        ..Default::default()
    });
    engine.load(&case.program);
    engine
}

/// Runs every query of a generated case on both engines and demands
/// bit-for-bit agreement on all observables.
pub fn run_cross_engine(case: &TestCase, config: &EngineCompareConfig) -> EngineOutcome {
    let mut interp = engine_for(EngineKind::Interp, case, config);
    let mut compiled = engine_for(EngineKind::Compiled, case, config);
    let mut outcome = EngineOutcome {
        discrepancy: None,
        compared: 0,
        errors_agreed: 0,
    };
    for query in &case.queries {
        let a = interp.query_term(&query.goal, &query.var_names, config.max_solutions);
        let b = compiled.query_term(&query.goal, &query.var_names, config.max_solutions);
        match (a, b) {
            (Err(ea), Err(eb)) if ea == eb => {
                outcome.compared += 1;
                outcome.errors_agreed += 1;
            }
            (Err(ea), Err(eb)) => {
                outcome.discrepancy = Some(EngineDiscrepancy::Errors {
                    query: query.to_string(),
                    interp: format!("error `{ea}`"),
                    compiled: format!("error `{eb}`"),
                });
                return outcome;
            }
            (Err(ea), Ok(ob)) => {
                outcome.discrepancy = Some(EngineDiscrepancy::Errors {
                    query: query.to_string(),
                    interp: format!("error `{ea}`"),
                    compiled: format!("{} solutions", ob.solutions.len()),
                });
                return outcome;
            }
            (Ok(oa), Err(eb)) => {
                outcome.discrepancy = Some(EngineDiscrepancy::Errors {
                    query: query.to_string(),
                    interp: format!("{} solutions", oa.solutions.len()),
                    compiled: format!("error `{eb}`"),
                });
                return outcome;
            }
            (Ok(oa), Ok(ob)) => match compare_outcomes(query, &oa, &ob) {
                None => outcome.compared += 1,
                some => {
                    outcome.discrepancy = some;
                    return outcome;
                }
            },
        }
    }
    outcome
}

/// First observable that differs between two successful outcomes, if any.
fn compare_outcomes(
    query: &Query,
    interp: &QueryOutcome,
    compiled: &QueryOutcome,
) -> Option<EngineDiscrepancy> {
    if interp.solutions != compiled.solutions {
        return Some(EngineDiscrepancy::Solutions {
            query: query.to_string(),
            interp: interp.solutions.iter().map(|s| s.to_string()).collect(),
            compiled: compiled.solutions.iter().map(|s| s.to_string()).collect(),
        });
    }
    if interp.counters != compiled.counters {
        return Some(EngineDiscrepancy::Counters {
            query: query.to_string(),
            interp: interp.counters,
            compiled: compiled.counters,
        });
    }
    if interp.profile != compiled.profile {
        let detail = profile_diff(&interp.profile, &compiled.profile);
        return Some(EngineDiscrepancy::Profile {
            query: query.to_string(),
            detail,
        });
    }
    if interp.output != compiled.output {
        return Some(EngineDiscrepancy::Output {
            query: query.to_string(),
            interp: interp.output.clone(),
            compiled: compiled.output.clone(),
        });
    }
    if interp.truncated != compiled.truncated {
        return Some(EngineDiscrepancy::Truncation {
            query: query.to_string(),
            interp: interp.truncated,
            compiled: compiled.truncated,
        });
    }
    None
}

fn profile_diff(
    interp: &[(String, prolog_engine::PredProfile)],
    compiled: &[(String, prolog_engine::PredProfile)],
) -> String {
    for (a, b) in interp.iter().zip(compiled) {
        if a != b {
            return format!(
                "interp {} calls={} backtracks={} vs compiled {} calls={} backtracks={}",
                a.0, a.1.calls, a.1.backtracks, b.0, b.1.calls, b.1.backtracks
            );
        }
    }
    format!(
        "row counts differ: interp {} vs compiled {}",
        interp.len(),
        compiled.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_case, GenConfig};
    use prolog_syntax::parse_program;

    fn case_from(src: &str, queries: &[&str]) -> TestCase {
        let program = parse_program(src).expect("parses");
        let queries = queries
            .iter()
            .map(|q| {
                let (goal, var_names) = prolog_syntax::parse_term(q).expect("query parses");
                Query { goal, var_names }
            })
            .collect();
        TestCase {
            seed: 0,
            program,
            queries,
            features: Default::default(),
        }
    }

    #[test]
    fn engines_agree_on_first_generated_seeds() {
        let gen_config = GenConfig::default();
        let config = EngineCompareConfig::default();
        let mut compared_total = 0;
        for seed in 0..25 {
            let case = generate_case(seed, &gen_config);
            let out = run_cross_engine(&case, &config);
            assert!(
                out.discrepancy.is_none(),
                "seed {seed}: {}\nprogram:\n{}",
                out.discrepancy.unwrap(),
                prolog_syntax::pretty::program_to_string(&case.program)
            );
            compared_total += out.compared;
        }
        assert!(compared_total > 0, "25 seeds and nothing compared");
    }

    #[test]
    fn agreement_covers_identical_errors() {
        // Both engines must hit the call limit at exactly the same call.
        let case = case_from("loop :- loop.", &["loop"]);
        let out = run_cross_engine(
            &case,
            &EngineCompareConfig {
                max_calls: 1_000,
                ..Default::default()
            },
        );
        assert!(out.discrepancy.is_none(), "{:?}", out.discrepancy);
        assert_eq!(out.compared, 1);
        assert_eq!(out.errors_agreed, 1);
    }

    #[test]
    fn truncation_point_is_shared() {
        let case = case_from("n(z). n(s(X)) :- n(X).", &["n(X)"]);
        let out = run_cross_engine(
            &case,
            &EngineCompareConfig {
                max_solutions: 17,
                ..Default::default()
            },
        );
        assert!(out.discrepancy.is_none(), "{:?}", out.discrepancy);
        assert_eq!(out.compared, 1);
    }

    #[test]
    fn output_and_control_constructs_compare() {
        let case = case_from(
            "step(X) :- member(X, [a, b, c]), write(X), nl.
             go :- step(_), fail.
             go.
             pick(X) :- (member(X, [1, 2]) -> true ; X = none).
             member(X, [X | _]).
             member(X, [_ | T]) :- member(X, T).",
            &["go", "pick(X)", "step(Y)"],
        );
        let out = run_cross_engine(&case, &EngineCompareConfig::default());
        assert!(out.discrepancy.is_none(), "{:?}", out.discrepancy);
        assert_eq!(out.compared, 3);
    }

    #[test]
    fn a_planted_divergence_is_reported() {
        // Run different programs through the two engines by comparing a
        // case against a hand-built mismatched outcome: simplest is to
        // compare outcomes directly.
        let case = case_from("p(1). p(2).", &["p(X)"]);
        let mut interp = engine_for(EngineKind::Interp, &case, &EngineCompareConfig::default());
        let q = &case.queries[0];
        let oa = interp.query_term(&q.goal, &q.var_names, 100).unwrap();
        let mut ob = oa.clone();
        ob.solutions.reverse();
        match compare_outcomes(q, &oa, &ob) {
            Some(EngineDiscrepancy::Solutions { .. }) => {}
            other => panic!("expected a solution-order mismatch, got {other:?}"),
        }
        let mut oc = oa.clone();
        oc.counters.unifications += 1;
        match compare_outcomes(q, &oa, &oc) {
            Some(EngineDiscrepancy::Counters { .. }) => {}
            other => panic!("expected a counter mismatch, got {other:?}"),
        }
    }
}
