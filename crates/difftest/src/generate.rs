//! Seeded random Prolog program generator.
//!
//! Programs are drawn stratified: ground fact predicates over a small
//! Herbrand domain at the bottom, then one or two layers of rule
//! predicates whose bodies call strictly downwards — so generated
//! programs always terminate (the only recursion is the bounded
//! countdown predicate, always entered on a literal). Each program
//! carries a query workload in several instantiation modes.
//!
//! Two invariants keep the oracle's error-skip rate low:
//!
//! 1. **Grounding repair**: every head variable of a rule clause is
//!    guaranteed to appear in a surely-grounding body position (a plain
//!    call to a fact/rule predicate, or as the result of `is/2`); a
//!    repair pass appends a fact call for any that is not. Successful
//!    calls therefore return ground answers, inductively.
//! 2. **Typed arithmetic**: arithmetic comparisons only touch variables
//!    known to hold integers (results of `is/2`); everything else uses
//!    the structural operators `==`, `\==`, `@<`, which are total.

use prolog_syntax::{Body, Clause, SourceProgram, Term};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;

/// Tuning knobs for the generator. Defaults generate small programs
/// (≈10–30 clauses) that a debug-build engine runs in milliseconds.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Fact predicates at the bottom of the program (at least 2).
    pub max_fact_preds: usize,
    /// Rule layers above the facts (each calls strictly downwards).
    pub max_layers: usize,
    /// Rule predicates per layer.
    pub max_preds_per_layer: usize,
    /// Clauses per rule predicate.
    pub max_clauses: usize,
    /// Top-level goals per clause body (before cut/repair insertion).
    pub max_goals: usize,
    /// Queries per generated case.
    pub max_queries: usize,
    /// Upper bound for literals fed to the recursive countdown predicate.
    pub recursion_depth: i64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_fact_preds: 4,
            max_layers: 2,
            max_preds_per_layer: 3,
            max_clauses: 3,
            max_goals: 4,
            max_queries: 6,
            recursion_depth: 5,
        }
    }
}

/// One query of a case: a goal term whose `Var(i)` is named
/// `var_names[i]`.
#[derive(Debug, Clone)]
pub struct Query {
    pub goal: Term,
    pub var_names: Vec<String>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&prolog_syntax::pretty::term_to_string(
            &self.goal,
            &self.var_names,
        ))
    }
}

/// Which restriction-surface constructs a generated program exercises.
/// The CLI aggregates these over a run as coverage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Features {
    pub cut: bool,
    pub negation: bool,
    pub disjunction: bool,
    pub if_then_else: bool,
    pub arithmetic: bool,
    pub fixed: bool,
    pub recursion: bool,
}

impl Features {
    /// `(label, present)` pairs, in display order.
    pub fn items(&self) -> [(&'static str, bool); 7] {
        [
            ("cut", self.cut),
            ("negation", self.negation),
            ("disjunction", self.disjunction),
            ("if-then-else", self.if_then_else),
            ("arithmetic", self.arithmetic),
            ("fixed", self.fixed),
            ("recursion", self.recursion),
        ]
    }
}

impl fmt::Display for Features {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let present: Vec<&str> = self
            .items()
            .iter()
            .filter(|(_, p)| *p)
            .map(|(n, _)| *n)
            .collect();
        if present.is_empty() {
            write!(f, "plain")
        } else {
            write!(f, "{}", present.join("+"))
        }
    }
}

/// A generated differential-test case.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The seed that reproduces exactly this case via [`generate_case`].
    pub seed: u64,
    pub program: SourceProgram,
    pub queries: Vec<Query>,
    pub features: Features,
}

/// What a body goal may call, and how its arguments must be shaped.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CalleeKind {
    /// Ground tuples: any argument shape, grounds all its variables.
    Fact,
    /// Grounding rule predicate from a lower layer.
    Rule,
    /// `count/3`: first two arguments must be integer-valued.
    Recursive,
    /// `trace_out/1`: side-effecting, makes callers fixed.
    SideEffect,
}

#[derive(Debug, Clone)]
struct Callee {
    name: String,
    arity: usize,
    kind: CalleeKind,
}

/// Pretty-printed generated programs for load generation: `count`
/// `(name, program text)` pairs seeded from `base_seed`. The `reordd`
/// bench client mixes these in with the fixed evaluation workloads so
/// the service sees structural variety (cut, negation, if-then-else,
/// recursion) rather than seven static programs. Deterministic: the same
/// `(count, base_seed)` always yields the same texts.
pub fn corpus_texts(count: usize, base_seed: u64, config: &GenConfig) -> Vec<(String, String)> {
    (0..count as u64)
        .map(|i| {
            let seed = base_seed.wrapping_add(i);
            let case = generate_case(seed, config);
            (
                format!("gen-{seed}"),
                prolog_syntax::pretty::program_to_string(&case.program),
            )
        })
        .collect()
}

/// Generates the case for `seed`. The same seed always yields the same
/// program, queries, and features.
pub fn generate_case(seed: u64, config: &GenConfig) -> TestCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = Generator {
        rng: &mut rng,
        config,
        atoms: Vec::new(),
        program: SourceProgram::default(),
        features: Features::default(),
    };
    let (pool, query_preds) = gen.emit_program();
    let queries = gen.emit_queries(&query_preds, &pool);
    TestCase {
        seed,
        program: gen.program,
        queries,
        features: gen.features,
    }
}

struct Generator<'a> {
    rng: &'a mut StdRng,
    config: &'a GenConfig,
    /// The atom part of the Herbrand domain (integers 0..=3 are the rest).
    atoms: Vec<&'static str>,
    program: SourceProgram,
    features: Features,
}

/// Per-clause bookkeeping while a body is being generated.
struct ClauseCtx {
    /// Number of variables allocated so far (names `X0`, `X1`, …).
    nvars: usize,
    /// Variables available for reuse (head vars + created ones).
    available: Vec<usize>,
    /// Variables guaranteed ground after the goals emitted so far.
    surely_bound: Vec<usize>,
    /// Subset of `surely_bound` known to hold integers.
    int_vars: Vec<usize>,
}

impl ClauseCtx {
    fn with_head_vars(n: usize) -> ClauseCtx {
        ClauseCtx {
            nvars: n,
            available: (0..n).collect(),
            surely_bound: Vec::new(),
            int_vars: Vec::new(),
        }
    }

    fn fresh(&mut self) -> usize {
        let v = self.nvars;
        self.nvars += 1;
        self.available.push(v);
        v
    }

    fn mark_bound(&mut self, v: usize) {
        if !self.surely_bound.contains(&v) {
            self.surely_bound.push(v);
        }
    }

    fn var_names(&self) -> Vec<String> {
        (0..self.nvars).map(|i| format!("X{i}")).collect()
    }
}

impl Generator<'_> {
    // -------------------------------------------------------------- misc --

    fn pick<'s, T>(&mut self, items: &'s [T]) -> &'s T {
        &items[self.rng.gen_range(0..items.len())]
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A random domain constant: an atom or a small integer.
    fn constant(&mut self) -> Term {
        if self.chance(0.6) {
            let i = self.rng.gen_range(0..self.atoms.len());
            Term::atom(self.atoms[i])
        } else {
            Term::Int(self.rng.gen_range(0..4i64))
        }
    }

    // ----------------------------------------------------------- program --

    /// Emits facts, the side-effect helper, the countdown predicate, and
    /// the rule layers. Returns the full callee pool and the predicates
    /// queries should target.
    fn emit_program(&mut self) -> (Vec<Callee>, Vec<Callee>) {
        const ATOMS: [&str; 5] = ["a", "b", "c", "d", "e"];
        let n_atoms = self.rng.gen_range(2..ATOMS.len() + 1);
        self.atoms = ATOMS[..n_atoms].to_vec();

        let mut pool: Vec<Callee> = Vec::new();

        // Fact predicates.
        let n_facts = self.rng.gen_range(2..self.config.max_fact_preds.max(2) + 1);
        for i in 0..n_facts {
            let arity = self.rng.gen_range(1..4usize);
            let name = format!("f{i}");
            let n_tuples = self.rng.gen_range(1..7usize);
            let mut last: Option<Vec<Term>> = None;
            for _ in 0..n_tuples {
                // Occasional duplicate tuples keep the multiset check honest.
                let args = match &last {
                    Some(prev) if self.chance(0.15) => prev.clone(),
                    _ => (0..arity).map(|_| self.constant()).collect::<Vec<_>>(),
                };
                last = Some(args.clone());
                self.program
                    .clauses
                    .push(Clause::fact(Term::app(&name, args)));
            }
            pool.push(Callee {
                name,
                arity,
                kind: CalleeKind::Fact,
            });
        }

        // Side-effecting helper: its callers become fixed.
        if self.chance(0.35) {
            self.program.clauses.push(Clause::rule(
                Term::app("trace_out", vec![Term::Var(0)]),
                Body::and(
                    Body::call("write", vec![Term::Var(0)]),
                    Body::call("nl", vec![]),
                ),
            ));
            pool.push(Callee {
                name: "trace_out".into(),
                arity: 1,
                kind: CalleeKind::SideEffect,
            });
            self.features.fixed = true;
        }

        // Bounded countdown recursion: count(N, Acc, R) adds N to Acc.
        if self.chance(0.4) {
            self.program.clauses.push(Clause::fact(Term::app(
                "count",
                vec![Term::Int(0), Term::Var(0), Term::Var(0)],
            )));
            let head = Term::app("count", vec![Term::Var(0), Term::Var(1), Term::Var(2)]);
            let body = Body::conjoin(&[
                Body::call(">", vec![Term::Var(0), Term::Int(0)]),
                Body::call(
                    "is",
                    vec![
                        Term::Var(3),
                        Term::app("-", vec![Term::Var(0), Term::Int(1)]),
                    ],
                ),
                Body::call(
                    "is",
                    vec![
                        Term::Var(4),
                        Term::app("+", vec![Term::Var(1), Term::Int(1)]),
                    ],
                ),
                Body::call("count", vec![Term::Var(3), Term::Var(4), Term::Var(2)]),
            ]);
            self.program.clauses.push(Clause::rule(head, body));
            pool.push(Callee {
                name: "count".into(),
                arity: 3,
                kind: CalleeKind::Recursive,
            });
            self.features.recursion = true;
            self.features.arithmetic = true;
        }

        // Rule layers, each calling strictly below itself.
        let n_layers = self.rng.gen_range(1..self.config.max_layers.max(1) + 1);
        let mut query_preds: Vec<Callee> = Vec::new();
        for layer in 0..n_layers {
            let n_preds = self
                .rng
                .gen_range(1..self.config.max_preds_per_layer.max(1) + 1);
            let mut this_layer: Vec<Callee> = Vec::new();
            for i in 0..n_preds {
                let arity = self.rng.gen_range(1..4usize);
                let name = format!("p{layer}_{i}");
                let n_clauses = self.rng.gen_range(1..self.config.max_clauses.max(1) + 1);
                for _ in 0..n_clauses {
                    let clause = self.emit_rule_clause(&name, arity, &pool);
                    self.program.clauses.push(clause);
                }
                this_layer.push(Callee {
                    name,
                    arity,
                    kind: CalleeKind::Rule,
                });
            }
            query_preds = this_layer.clone();
            pool.extend(this_layer);
        }
        (pool, query_preds)
    }

    /// One clause of a rule predicate, honouring the grounding-repair
    /// invariant (see module docs).
    fn emit_rule_clause(&mut self, name: &str, arity: usize, pool: &[Callee]) -> Clause {
        let mut ctx = ClauseCtx::with_head_vars(arity);
        let mut head_args: Vec<Term> = (0..arity).map(Term::Var).collect();
        // Occasionally constrain the head: a constant or a repeated var.
        if self.chance(0.2) {
            let i = self.rng.gen_range(0..arity);
            head_args[i] = self.constant();
        } else if arity >= 2 && self.chance(0.15) {
            let i = self.rng.gen_range(1..arity);
            head_args[i] = Term::Var(0);
        }

        let n_goals = self.rng.gen_range(1..self.config.max_goals.max(1) + 1);
        let mut goals: Vec<Body> = Vec::new();
        for _ in 0..n_goals {
            let goal = self.emit_goal(&mut ctx, pool);
            goals.push(goal);
        }

        // Cut: spliced at a random position with low probability.
        if self.chance(0.15) {
            let at = self.rng.gen_range(0..goals.len() + 1);
            goals.insert(at, Body::Cut);
            self.features.cut = true;
        }

        // Grounding repair: every head variable must be surely bound.
        let head_term = Term::app(name, head_args);
        for v in head_term.variables() {
            if !ctx.surely_bound.contains(&v) {
                let grounder = self.grounding_call(v, &mut ctx, pool);
                goals.push(grounder);
            }
        }

        let var_names = ctx.var_names();
        Clause {
            head: head_term,
            body: Body::conjoin(&goals),
            var_names,
        }
    }

    /// A plain fact/rule call that surely grounds `v`.
    fn grounding_call(&mut self, v: usize, ctx: &mut ClauseCtx, pool: &[Callee]) -> Body {
        let grounding: Vec<Callee> = pool
            .iter()
            .filter(|c| matches!(c.kind, CalleeKind::Fact | CalleeKind::Rule))
            .cloned()
            .collect();
        let callee = self.pick(&grounding).clone();
        let slot = self.rng.gen_range(0..callee.arity);
        let args: Vec<Term> = (0..callee.arity)
            .map(|i| {
                if i == slot {
                    Term::Var(v)
                } else if self.chance(0.5) {
                    Term::Var(ctx.fresh())
                } else {
                    self.constant()
                }
            })
            .collect();
        for var in Term::app(&callee.name, args.clone()).variables() {
            ctx.mark_bound(var);
        }
        Body::call(&callee.name, args)
    }

    /// One top-level body goal.
    fn emit_goal(&mut self, ctx: &mut ClauseCtx, pool: &[Callee]) -> Body {
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            // Plain call: the workhorse, weighted heaviest.
            0..=44 => self.emit_plain_call(ctx, pool),
            // Arithmetic evaluation (needs nothing: literals always work).
            45..=57 => self.emit_arith(ctx),
            // Comparison test.
            58..=69 => self.emit_test(ctx),
            // Negation.
            70..=79 => {
                self.features.negation = true;
                let inner = self.inner_call(ctx, pool, false);
                Body::negate(inner)
            }
            // Disjunction of two calls.
            80..=89 => {
                self.features.disjunction = true;
                let a = self.inner_call(ctx, pool, false);
                let b = self.inner_call(ctx, pool, false);
                Body::or(a, b)
            }
            // If-then-else.
            _ => {
                self.features.if_then_else = true;
                let c = self.inner_call(ctx, pool, false);
                let t = if self.chance(0.7) {
                    self.inner_call(ctx, pool, false)
                } else {
                    Body::True
                };
                let e = if self.chance(0.7) {
                    self.inner_call(ctx, pool, false)
                } else {
                    Body::Fail
                };
                Body::if_then_else(c, t, e)
            }
        }
    }

    /// A plain top-level call; its variable arguments become surely bound
    /// (fact/rule/recursive callees ground their arguments on success).
    fn emit_plain_call(&mut self, ctx: &mut ClauseCtx, pool: &[Callee]) -> Body {
        let callee = self.pick(pool).clone();
        let args = self.call_args(&callee, ctx);
        if matches!(
            callee.kind,
            CalleeKind::Fact | CalleeKind::Rule | CalleeKind::Recursive
        ) {
            for v in Term::app(&callee.name, args.clone()).variables() {
                ctx.mark_bound(v);
                if callee.kind == CalleeKind::Recursive {
                    // count/3 only traffics in integers.
                    if !ctx.int_vars.contains(&v) {
                        ctx.int_vars.push(v);
                    }
                }
            }
        }
        Body::call(&callee.name, args)
    }

    /// A call used inside a control construct: argument variables do NOT
    /// become surely bound (negation binds nothing; disjunction and
    /// if-then-else bind only on some paths). When `bound_only`, every
    /// argument is a surely-bound variable or a constant.
    fn inner_call(&mut self, ctx: &mut ClauseCtx, pool: &[Callee], bound_only: bool) -> Body {
        let choices: Vec<Callee> = pool
            .iter()
            .filter(|c| matches!(c.kind, CalleeKind::Fact | CalleeKind::Rule))
            .cloned()
            .collect();
        let callee = self.pick(&choices).clone();
        let args: Vec<Term> = (0..callee.arity)
            .map(|_| {
                if !ctx.surely_bound.is_empty() && self.chance(0.5) {
                    Term::Var(*self.pick(&ctx.surely_bound.clone()))
                } else if !bound_only && !ctx.available.is_empty() && self.chance(0.4) {
                    Term::Var(*self.pick(&ctx.available.clone()))
                } else {
                    self.constant()
                }
            })
            .collect();
        Body::call(&callee.name, args)
    }

    /// Arguments for a plain call, shaped by the callee kind.
    fn call_args(&mut self, callee: &Callee, ctx: &mut ClauseCtx) -> Vec<Term> {
        match callee.kind {
            CalleeKind::Recursive => {
                // count(N, Acc, R): N and Acc must evaluate to integers at
                // call time — literals keep the original program error-free.
                let n = self
                    .rng
                    .gen_range(0..self.config.recursion_depth.max(1) + 1);
                let acc = self.rng.gen_range(0..4i64);
                let r = if !ctx.available.is_empty() && self.chance(0.3) {
                    Term::Var(*self.pick(&ctx.available.clone()))
                } else {
                    Term::Var(ctx.fresh())
                };
                vec![Term::Int(n), Term::Int(acc), r]
            }
            CalleeKind::SideEffect => {
                let arg = if !ctx.surely_bound.is_empty() && self.chance(0.7) {
                    Term::Var(*self.pick(&ctx.surely_bound.clone()))
                } else {
                    self.constant()
                };
                vec![arg]
            }
            CalleeKind::Fact | CalleeKind::Rule => (0..callee.arity)
                .map(|_| {
                    let roll = self.rng.gen_range(0..100u32);
                    if roll < 45 && !ctx.available.is_empty() {
                        Term::Var(*self.pick(&ctx.available.clone()))
                    } else if roll < 70 {
                        Term::Var(ctx.fresh())
                    } else {
                        self.constant()
                    }
                })
                .collect(),
        }
    }

    /// `V is E` over integer-valued operands; the result var is an
    /// integer var usable in arithmetic comparisons.
    fn emit_arith(&mut self, ctx: &mut ClauseCtx) -> Body {
        self.features.arithmetic = true;
        let operand = |gen: &mut Self, ctx: &ClauseCtx| {
            if !ctx.int_vars.is_empty() && gen.chance(0.5) {
                Term::Var(*gen.pick(&ctx.int_vars.clone()))
            } else {
                Term::Int(gen.rng.gen_range(0..5i64))
            }
        };
        let a = operand(self, ctx);
        let b = operand(self, ctx);
        let op = *self.pick(&["+", "-", "*"]);
        let v = ctx.fresh();
        ctx.mark_bound(v);
        ctx.int_vars.push(v);
        Body::call("is", vec![Term::Var(v), Term::app(op, vec![a, b])])
    }

    /// A deterministic test goal: arithmetic comparison over integer vars
    /// and literals, or a structural comparison (total on all terms).
    fn emit_test(&mut self, ctx: &mut ClauseCtx) -> Body {
        let int_operand = |gen: &mut Self, ctx: &ClauseCtx| {
            if !ctx.int_vars.is_empty() && gen.chance(0.6) {
                Term::Var(*gen.pick(&ctx.int_vars.clone()))
            } else {
                Term::Int(gen.rng.gen_range(0..5i64))
            }
        };
        if !ctx.int_vars.is_empty() && self.chance(0.5) {
            self.features.arithmetic = true;
            let op = *self.pick(&["<", "=<", ">", ">=", "=:=", "=\\="]);
            let a = int_operand(self, ctx);
            let b = int_operand(self, ctx);
            Body::call(op, vec![a, b])
        } else {
            let op = *self.pick(&["==", "\\==", "@<", "@=<"]);
            let operand = |gen: &mut Self, ctx: &ClauseCtx| {
                if !ctx.surely_bound.is_empty() && gen.chance(0.6) {
                    Term::Var(*gen.pick(&ctx.surely_bound.clone()))
                } else {
                    gen.constant()
                }
            };
            let a = operand(self, ctx);
            let b = operand(self, ctx);
            Body::call(op, vec![a, b])
        }
    }

    // ----------------------------------------------------------- queries --

    /// Query workload: each targeted predicate is exercised all-free,
    /// all-bound, and in a random mixed instantiation.
    fn emit_queries(&mut self, query_preds: &[Callee], pool: &[Callee]) -> Vec<Query> {
        // Prefer top-layer predicates; fall back to anything callable.
        let targets: Vec<Callee> = if query_preds.is_empty() {
            pool.iter()
                .filter(|c| c.kind == CalleeKind::Fact)
                .cloned()
                .collect()
        } else {
            query_preds.to_vec()
        };
        let mut queries = Vec::new();
        for target in &targets {
            if queries.len() >= self.config.max_queries {
                break;
            }
            // All-free: the mode the paper's tables report first.
            queries.push(self.query_with(target, &|_gen, _i| None));
            if queries.len() >= self.config.max_queries {
                break;
            }
            // All-bound.
            queries.push(self.query_with(target, &|gen, _i| Some(gen.constant())));
            if queries.len() >= self.config.max_queries {
                break;
            }
            // Mixed.
            if target.arity >= 2 {
                queries.push(self.query_with(target, &|gen, _i| {
                    if gen.chance(0.5) {
                        Some(gen.constant())
                    } else {
                        None
                    }
                }));
            }
        }
        queries
    }

    /// Builds one query; `bind(i)` returns `Some(constant)` for bound
    /// argument positions and `None` for free ones.
    fn query_with(
        &mut self,
        target: &Callee,
        bind: &dyn Fn(&mut Self, usize) -> Option<Term>,
    ) -> Query {
        let mut var_names = Vec::new();
        let args: Vec<Term> = (0..target.arity)
            .map(|i| match bind(self, i) {
                Some(c) => c,
                None => {
                    let v = var_names.len();
                    var_names.push(format!("V{v}"));
                    Term::Var(v)
                }
            })
            .collect();
        Query {
            goal: Term::app(&target.name, args),
            var_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GenConfig::default();
        let a = generate_case(42, &config);
        let b = generate_case(42, &config);
        assert_eq!(
            prolog_syntax::pretty::program_to_string(&a.program),
            prolog_syntax::pretty::program_to_string(&b.program)
        );
        assert_eq!(a.queries.len(), b.queries.len());
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.to_string(), qb.to_string());
        }
        let c = generate_case(43, &config);
        assert_ne!(
            prolog_syntax::pretty::program_to_string(&a.program),
            prolog_syntax::pretty::program_to_string(&c.program),
        );
    }

    #[test]
    fn generated_programs_reparse() {
        let config = GenConfig::default();
        for seed in 0..50 {
            let case = generate_case(seed, &config);
            let text = prolog_syntax::pretty::program_to_string(&case.program);
            let reparsed = prolog_syntax::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: emitted program must parse: {e}\n{text}"));
            assert_eq!(reparsed.clauses.len(), case.program.clauses.len());
            assert!(!case.queries.is_empty(), "seed {seed}: no queries");
        }
    }

    #[test]
    fn feature_surface_is_reached_quickly() {
        let config = GenConfig::default();
        let mut seen = Features::default();
        for seed in 0..200 {
            let f = generate_case(seed, &config).features;
            seen.cut |= f.cut;
            seen.negation |= f.negation;
            seen.disjunction |= f.disjunction;
            seen.if_then_else |= f.if_then_else;
            seen.arithmetic |= f.arithmetic;
            seen.fixed |= f.fixed;
            seen.recursion |= f.recursion;
        }
        for (name, present) in seen.items() {
            assert!(present, "200 seeds never produced {name}");
        }
    }
}
