//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! the subset of proptest's API its property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and tuple
//! strategies, simple regex-pattern string strategies, `Just`,
//! `prop_oneof!`, `prop::collection::vec`, `any::<T>()`, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways. Inputs
//! are drawn from a *deterministic* per-test stream (seeded from the
//! test name, so failures reproduce exactly without a persistence file).
//! And shrinking is *greedy* rather than tree-based: on a failing case
//! the runner asks each strategy for strictly-smaller candidates
//! ([`strategy::Strategy::shrink`]), descends componentwise while the
//! property keeps failing (bounded by a fixed candidate budget), prints
//! the minimised counterexample, and re-runs it uncaught so the test
//! fails with the real assertion. Integer ranges shrink toward their
//! start, `any::<T>()` toward zero, and `prop::collection::vec` by
//! dropping elements and shrinking survivors; `Just`, string patterns,
//! and `prop_map` outputs do not shrink.

pub mod strategy;

pub mod runner {
    //! Drives `proptest!`-declared properties: generation, failure
    //! detection, and greedy minimisation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Candidate evaluations spent minimising one failure. Greedy descent
    /// usually needs far fewer; the cap bounds pathological strategies.
    const SHRINK_BUDGET: usize = 512;

    fn fails<V>(test: &impl Fn(&V), value: &V) -> bool {
        catch_unwind(AssertUnwindSafe(|| test(value))).is_err()
    }

    /// Greedy descent: repeatedly replaces `current` with the first
    /// shrink candidate that still fails, until no candidate fails or
    /// the budget runs out. `test` signals failure by panicking.
    pub fn minimize<S: Strategy>(
        strategy: &S,
        mut current: S::Value,
        test: &impl Fn(&S::Value),
    ) -> S::Value {
        let mut budget = SHRINK_BUDGET;
        'descend: while budget > 0 {
            for candidate in strategy.shrink(&current) {
                if budget == 0 {
                    break 'descend;
                }
                budget -= 1;
                if fails(test, &candidate) {
                    current = candidate;
                    continue 'descend;
                }
            }
            break;
        }
        current
    }

    /// Runs `cases` draws of `strategy` through `test`. On failure the
    /// case is minimised (quietly — candidate panics are expected and
    /// suppressed), the counterexample printed, and the minimal case
    /// re-run uncaught so the test dies with its real assertion message.
    pub fn run_cases<S>(label: &str, cases: u32, strategy: &S, test: impl Fn(&S::Value))
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
    {
        let mut rng = TestRng::deterministic(label);
        for case in 0..cases {
            let values = strategy.generate(&mut rng);
            if !fails(&test, &values) {
                continue;
            }
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let minimal = minimize(strategy, values, &test);
            std::panic::set_hook(prev_hook);
            eprintln!(
                "proptest: {label}: case {}/{cases} failed; minimal counterexample: {minimal:?}",
                case + 1
            );
            test(&minimal);
            unreachable!("proptest: {label}: minimal counterexample no longer fails");
        }
    }
}

pub mod test_runner {
    /// Run configuration. Mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator feeding the strategies (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (the test's name) so
        /// every test draws an independent, reproducible sequence.
        pub fn deterministic(label: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// `any::<T>()`: the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        /// Length shrinking first (halve, then drop each element), then
        /// in-place element shrinking — all candidates stay at or above
        /// the strategy's minimum length.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let mut out = Vec::new();
            if value.len() / 2 >= min && value.len() / 2 < value.len() {
                out.push(value[..value.len() / 2].to_vec());
            }
            if value.len() > min {
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for i in 0..value.len() {
                for candidate in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut smaller = value.clone();
                    smaller[i] = candidate;
                    out.push(smaller);
                }
            }
            out
        }
    }
}

pub mod prelude {
    /// Mirrors proptest's `prelude::prop` crate alias (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Union of alternative strategies, equal weight per arm.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn` runs `config.cases` times with
/// fresh inputs drawn from its strategies; a failing case is minimised
/// by greedy componentwise shrinking before the test dies with it.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let __strategy = ($($strategy,)+);
                $crate::runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    &__strategy,
                    |__values| {
                        let ($($pat,)+) = ::std::clone::Clone::clone(__values);
                        $body
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_tree() -> impl Strategy<Value = Vec<u8>> {
        prop_oneof![Just(vec![1u8]), (0u8..10).prop_map(|n| vec![n, n])]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_compose(v in small_tree()) {
            prop_assert!(v.len() == 1 || (v.len() == 2 && v[0] == v[1]));
        }

        #[test]
        fn string_patterns_generate_matching_names(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!((1..=7).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.as_bytes()[0].is_ascii_lowercase());
        }

        #[test]
        fn recursion_terminates(t in small_tree().prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(mut a, b)| { a.extend(b); a })
        })) {
            prop_assert!(!t.is_empty());
        }
    }

    #[test]
    fn range_shrink_candidates_stay_in_range_and_decrease() {
        let strategy = 10u32..100;
        let candidates = strategy.shrink(&57);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|&c| (10..57).contains(&c)));
        assert!(candidates.contains(&10), "should jump straight to start");
        assert!(strategy.shrink(&10).is_empty(), "start is minimal");
    }

    #[test]
    fn signed_full_range_shrinks_toward_zero() {
        let strategy = any::<i32>();
        let candidates = Strategy::shrink(&strategy, &-8);
        assert!(candidates.contains(&0));
        assert!(candidates.contains(&-4));
        assert!(candidates.contains(&-7));
        assert!(Strategy::shrink(&strategy, &0).is_empty());
    }

    #[test]
    fn minimize_finds_boundary_of_failing_range() {
        // Property: n < 10. Failing from 99, the minimum failing input
        // is exactly the boundary.
        let strategy = (0u32..100,);
        let minimal = crate::runner::minimize(&strategy, (99,), &|v| assert!(v.0 < 10));
        assert_eq!(minimal, (10,));
    }

    #[test]
    fn minimize_isolates_offending_vec_element() {
        // Property: no element equals 42. The minimum failing vector is
        // the single offending element.
        let strategy = (prop::collection::vec(0u8..100, 1..8),);
        let minimal = crate::runner::minimize(&strategy, (vec![3, 42, 7, 42],), &|v| {
            assert!(!v.0.contains(&42))
        });
        assert_eq!(minimal, (vec![42u8],));
    }

    #[test]
    fn vec_shrink_respects_min_length() {
        let strategy = prop::collection::vec(0u8..100, 2..8);
        let value = vec![5u8, 6, 7];
        for candidate in strategy.shrink(&value) {
            assert!(candidate.len() >= 2, "candidate {candidate:?} too short");
        }
        // At the minimum length only element shrinks remain.
        for candidate in strategy.shrink(&vec![9u8, 9]) {
            assert_eq!(candidate.len(), 2);
        }
    }

    #[test]
    fn componentwise_shrink_changes_one_position() {
        let strategy = (0u8..50, 0u8..50);
        for (a, b) in strategy.shrink(&(30, 40)) {
            assert!(
                (a == 30) ^ (b == 40) || (a < 30 && b == 40) || (a == 30 && b < 40),
                "candidate ({a}, {b}) changed both positions"
            );
            assert!(a <= 30 && b <= 40);
        }
    }

    #[test]
    fn streams_are_deterministic_per_label() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
