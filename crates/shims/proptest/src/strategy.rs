//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. Strategies are generation-only: `generate` draws one value
//! from the deterministic test stream; there is no shrink tree.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and wraps it one level. `depth` bounds nesting;
    /// the `desired_size`/`expected_branch_size` hints are accepted for
    /// API compatibility but unused (leveling already bounds growth).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is an even split between stopping at a leaf and
            // recursing one step deeper, so generation always terminates.
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`] and [`Union`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice between alternatives (what `prop_oneof!` builds).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-range strategy behind `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(pub PhantomData<T>);

macro_rules! impl_full_range {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies generate tuples of values.
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---------------------------------------------------------------------
// String patterns: `"[a-z][a-z0-9_]{0,6}"` as a Strategy<Value = String>.
// ---------------------------------------------------------------------

/// One element of a simple pattern: a set of candidate characters plus a
/// repetition range.
#[derive(Debug, Clone)]
struct PatternPiece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the restricted regex subset the tests use: literal characters,
/// `[...]` classes with ranges, and `{m,n}` / `?` / `*` / `+` repetition.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in {pattern}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in {pattern}");
            i += 1; // consume ']'
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern}");
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in {pattern}");
        pieces.push(PatternPiece { choices, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(piece.choices[rng.below(piece.choices.len() as u64) as usize]);
            }
        }
        out
    }
}
