//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. `generate` draws one value from the deterministic test
//! stream; `shrink` proposes strictly-smaller candidates for a failing
//! value (no lazy shrink tree — the runner re-tests candidates greedily).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Inserts `candidate` unless it is already present.
fn push_unique<T: PartialEq>(out: &mut Vec<T>, candidate: T) {
    if !out.contains(&candidate) {
        out.push(candidate);
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, each strictly "smaller" so
    /// greedy descent terminates. The runner keeps a candidate only if
    /// the property still fails on it; an empty list stops the descent.
    /// Default: not shrinkable (`Just`, `prop_map` outputs, patterns).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// smaller structure and wraps it one level. `depth` bounds nesting;
    /// the `desired_size`/`expected_branch_size` hints are accepted for
    /// API compatibility but unused (leveling already bounds growth).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is an even split between stopping at a leaf and
            // recursing one step deeper, so generation always terminates.
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`] and [`Union`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
    fn shrink_dyn(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.shrink_dyn(value)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice between alternatives (what `prop_oneof!` builds).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
    /// The generating arm is unknown after the fact, so every arm gets to
    /// propose candidates; the runner's re-test filters out nonsense.
    fn shrink(&self, value: &V) -> Vec<V> {
        self.arms.iter().flat_map(|arm| arm.shrink(value)).collect()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-range strategy behind `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(pub PhantomData<T>);

macro_rules! impl_full_range {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            /// Shrinks toward zero: zero itself, the halfway point, and
            /// one step closer.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0 as $t];
                push_unique(&mut out, v / 2);
                #[allow(unused_comparisons)]
                let step = if v > 0 { v - 1 } else { v + 1 };
                push_unique(&mut out, step);
                out
            }
        }
    )*};
}

impl_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
            /// Shrinks toward the range start: the start itself, the
            /// halfway point, and one step closer.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v <= self.start {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let dist = v.wrapping_sub(self.start) as u64;
                push_unique(&mut out, self.start.wrapping_add((dist / 2) as $t));
                push_unique(&mut out, v - 1);
                out
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if self.start < v {
            out.push(self.start);
            let mid = self.start + (v - self.start) / 2.0;
            if mid < v && mid > self.start {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
    fn shrink(&self, value: &f32) -> Vec<f32> {
        let v = *value;
        let mut out = Vec::new();
        if self.start < v {
            out.push(self.start);
            let mid = self.start + (v - self.start) / 2.0;
            if mid < v && mid > self.start {
                out.push(mid);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies generate tuples of values. Shrinking is
// componentwise (each candidate simplifies exactly one position), which
// needs `Clone` on the component values — written out per arity because
// macro repetition cannot express "this position varies, the rest are
// cloned".
// ---------------------------------------------------------------------

impl<A: Strategy> Strategy for (A,)
where
    A::Value: Clone,
{
    type Value = (A::Value,);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng),)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.0.shrink(&value.0).into_iter().map(|a| (a,)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B)
where
    A::Value: Clone,
    B::Value: Clone,
{
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        out.extend(
            self.0
                .shrink(&value.0)
                .into_iter()
                .map(|a| (a, value.1.clone())),
        );
        out.extend(
            self.1
                .shrink(&value.1)
                .into_iter()
                .map(|b| (value.0.clone(), b)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c) = value;
        let mut out = Vec::new();
        out.extend(
            self.0
                .shrink(a)
                .into_iter()
                .map(|x| (x, b.clone(), c.clone())),
        );
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|x| (a.clone(), x, c.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c, d) = value;
        let mut out = Vec::new();
        out.extend(
            self.0
                .shrink(a)
                .into_iter()
                .map(|x| (x, b.clone(), c.clone(), d.clone())),
        );
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|x| (a.clone(), x, c.clone(), d.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x, d.clone())),
        );
        out.extend(
            self.3
                .shrink(d)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), c.clone(), x)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E)
where
    A::Value: Clone,
    B::Value: Clone,
    C::Value: Clone,
    D::Value: Clone,
    E::Value: Clone,
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (a, b, c, d, e) = value;
        let mut out = Vec::new();
        out.extend(
            self.0
                .shrink(a)
                .into_iter()
                .map(|x| (x, b.clone(), c.clone(), d.clone(), e.clone())),
        );
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|x| (a.clone(), x, c.clone(), d.clone(), e.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), x, d.clone(), e.clone())),
        );
        out.extend(
            self.3
                .shrink(d)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), c.clone(), x, e.clone())),
        );
        out.extend(
            self.4
                .shrink(e)
                .into_iter()
                .map(|x| (a.clone(), b.clone(), c.clone(), d.clone(), x)),
        );
        out
    }
}

// ---------------------------------------------------------------------
// String patterns: `"[a-z][a-z0-9_]{0,6}"` as a Strategy<Value = String>.
// ---------------------------------------------------------------------

/// One element of a simple pattern: a set of candidate characters plus a
/// repetition range.
#[derive(Debug, Clone)]
struct PatternPiece {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the restricted regex subset the tests use: literal characters,
/// `[...]` classes with ranges, and `{m,n}` / `?` / `*` / `+` repetition.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    assert!(lo <= hi, "bad class range in {pattern}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    i += 3;
                } else {
                    set.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in {pattern}");
            i += 1; // consume ']'
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern}");
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed {")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in {pattern}");
        pieces.push(PatternPiece { choices, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(piece.choices[rng.below(piece.choices.len() as u64) as usize]);
            }
        }
        out
    }
}
