//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` over
//! half-open integer/float ranges, and `Rng::gen_bool`. The stream is
//! produced by xoshiro256** seeded through splitmix64 — statistically
//! solid for workload generation, though not bit-compatible with the
//! real `StdRng` (callers only rely on determinism per seed, which this
//! provides).

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion of the seed, as rand does.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5..1500);
            assert!((5..1500).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
