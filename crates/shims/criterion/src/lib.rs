//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! the subset of criterion's API its benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a plain wall-clock loop:
//! a short warm-up sizes the batch, then batches run until the
//! measurement budget is spent and the per-iteration mean, min, and max
//! are printed. No statistics beyond that — enough for the relative
//! comparisons the benches make (original vs reordered, jobs=1 vs
//! jobs=N), not for publication-grade confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, `criterion`-style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => Ok(()),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~10% of the budget is spent, counting
        // iterations so the measured batches amortise timer overhead.
        let warmup_budget = self.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let per = elapsed / batch as u32;
            min = min.min(per);
            max = max.max(per);
            total += elapsed;
            iters += batch;
        }
        self.result = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            max,
            iters,
        });
    }
}

/// Top-level harness handle.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(500),
        }
    }
}

fn run_one(name: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{name:<48} mean {:>12?}  min {:>12?}  max {:>12?}  ({} iters)",
            s.mean, s.min, s.max, s.iters
        ),
        None => println!("{name:<48} (no measurement: bencher never invoked)"),
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(name, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("invert", 8).to_string(), "invert/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
