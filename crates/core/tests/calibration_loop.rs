//! The closed calibration loop (`reorder::calibrate_loop`): first-round
//! measurements change the plan, the loop reaches a fixed point within
//! its round budget, the converged emission is byte-identical however
//! many worker threads plan it, and measured regressions — including the
//! meta-call dispatcher tax inside `findall/3` — are repaired rather
//! than shipped.

use prolog_engine::{Engine, MachineConfig};
use prolog_syntax::{PredId, SourceProgram};
use prolog_workloads::corporate::{corporate_program, CorporateConfig};
use prolog_workloads::family::{family_program, FamilyConfig};
use reorder::{CalibrationConfig, CalibrationOptions, ReorderConfig, Reorderer};

/// A 15-person family tree: big enough that the static model diverges
/// from measurement, small enough for debug-build engines.
fn small_family() -> SourceProgram {
    family_program(&FamilyConfig {
        seed: 3,
        couples: 5,
        founder_couples: 2,
        girls: 3,
        boys: 2,
        mother_facts: 9,
    })
    .0
}

fn quick_opts(rounds: usize) -> CalibrationOptions {
    CalibrationOptions {
        rounds,
        sample: CalibrationConfig {
            max_queries_per_mode: 16,
            max_calls_per_query: 200_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Total user-predicate calls to exhaust every solution of `goal`.
fn calls(program: &SourceProgram, goal: &str) -> u64 {
    let mut engine = Engine::with_config(MachineConfig {
        unknown_fails: true,
        max_calls: 10_000_000,
        ..Default::default()
    });
    engine.load(program);
    let (term, names) = prolog_syntax::parse_term(goal).expect("query parses");
    let outcome = engine
        .query_term(&term, &names, usize::MAX)
        .expect("query runs");
    outcome.counters.user_calls
}

#[test]
fn first_round_overrides_change_the_plan_and_the_loop_converges() {
    let program = small_family();
    let outcome = reorder::calibrate_loop(&program, &ReorderConfig::default(), &quick_opts(4));

    // Round 0 plans with measured costs installed; if that never moved
    // the plan away from the static one, the loop would be a no-op.
    assert!(
        outcome.rounds[0].plan_changed,
        "first-round measurements must change the static plan"
    );
    assert!(
        outcome.converged,
        "loop must reach its fixed point within 4 rounds: {:?}",
        outcome
            .rounds
            .iter()
            .map(|r| (r.round, r.plan_changed, r.max_cost_delta))
            .collect::<Vec<_>>()
    );
    let last = outcome.rounds.last().unwrap();
    assert!(last.new_pins.is_empty());
    assert!(!last.plan_changed || last.max_cost_delta <= 0.5);

    // The fixed point is real: re-planning with the converged override
    // set and pins emits the very same bytes.
    let config = ReorderConfig {
        pinned: outcome.pinned.clone(),
        ..ReorderConfig::default()
    };
    let replay = Reorderer::new(&program, config)
        .with_measured_costs(outcome.measured.clone())
        .run();
    assert_eq!(
        prolog_syntax::pretty::program_to_string(&replay.program),
        prolog_syntax::pretty::program_to_string(&outcome.result.program),
        "converged emission must be reproducible from its own overrides"
    );

    // The divergence table (the `--calibrate-report` payload) covers the
    // pairs the report planned.
    assert!(!outcome.divergence.is_empty());
}

#[test]
fn converged_emission_is_identical_across_jobs() {
    let program = small_family();
    let src = prolog_syntax::pretty::program_to_string(&program);
    let texts: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            let config = ReorderConfig {
                jobs,
                ..ReorderConfig::default()
            };
            let (outcome, _) =
                reorder::calibrate_source(&src, &config, &quick_opts(3)).expect("source parses");
            outcome.text
        })
        .collect();
    assert_eq!(texts[0], texts[1], "jobs=1 vs jobs=2");
    assert_eq!(texts[0], texts[2], "jobs=1 vs jobs=8");
}

#[test]
fn calibration_does_not_pessimise_brother_on_net() {
    // brother/2 is one of the predicates the static model misjudges
    // (BENCH trajectory: 0.86x all-free before calibration). After the
    // loop, the benchmark call mix must be no worse than the input
    // program — per predicate, summed over its queried modes.
    let (program, people) = family_program(&FamilyConfig::default());
    let outcome = reorder::calibrate_loop(&program, &ReorderConfig::default(), &quick_opts(4));

    let version_for = |suffix: &str| {
        outcome
            .result
            .report
            .predicate(PredId::new("brother", 2))
            .and_then(|pr| {
                pr.modes
                    .iter()
                    .find(|m| m.mode.suffix() == suffix)
                    .map(|m| m.version.clone())
            })
            .unwrap_or_else(|| "brother".to_string())
    };
    let mut orig_total = 0u64;
    let mut calibrated_total = 0u64;
    // All-free exhaustion plus every bound-first-argument query: the
    // call mix the workload's benchmark tables use.
    orig_total += calls(&program, "brother(X, Y)");
    calibrated_total += calls(
        &outcome.result.program,
        &format!("{}(X, Y)", version_for("uu")),
    );
    for person in &people {
        orig_total += calls(&program, &format!("brother({person}, Y)"));
        calibrated_total += calls(
            &outcome.result.program,
            &format!("{}({person}, Y)", version_for("iu")),
        );
    }
    assert!(
        calibrated_total <= orig_total,
        "brother/2 net: calibrated {calibrated_total} calls vs original {orig_total}"
    );
}

#[test]
fn dispatcher_tax_inside_findall_is_pinned_away() {
    // `average_pay/2` runs `dept_salary/2` as a findall meta-goal: if
    // dept_salary is specialised, every meta-activation pays the var/1
    // dispatcher — a cost the static model never charges. The loop must
    // measure the regression on the (skipped) caller and pin the callee.
    let (program, _) = corporate_program(&CorporateConfig {
        seed: 42,
        employees: 24,
    });
    let outcome = reorder::calibrate_loop(&program, &ReorderConfig::default(), &quick_opts(4));

    let orig = calls(&program, "average_pay(D, A)");
    let calibrated = calls(&outcome.result.program, "average_pay(D, A)");
    assert!(
        calibrated <= orig,
        "average_pay(-,-): calibrated {calibrated} calls vs original {orig} \
         (pinned: {:?})",
        outcome.pinned
    );

    // The uncalibrated reorder ships the dispatcher tax (this is the bug
    // the loop exists to fix) — make sure the test would catch it.
    let static_result = Reorderer::new(&program, ReorderConfig::default()).run();
    let static_calls = calls(&static_result.program, "average_pay(D, A)");
    assert!(
        static_calls > orig,
        "expected the static plan to regress average_pay (got {static_calls} vs {orig}); \
         if this no longer holds the workload needs rebalancing"
    );
}
