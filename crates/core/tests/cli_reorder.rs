//! End-to-end tests for the `reorder-prolog` command-line tool.

use std::process::Command;

const PROGRAM: &str = "
girl(g1). girl(g2).
wife(h1, w1). wife(h2, w2).
mother(c1, m1). mother(c2, m1). mother(c3, w1).
female(X) :- girl(X).
female(X) :- wife(_, X).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
";

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("reorder-cli-{}-{}", std::process::id(), name))
}

#[test]
fn reorders_a_file_to_stdout() {
    let input = tmp("in.pl");
    std::fs::write(&input, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_reorder-prolog"))
        .arg(&input)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("grandmother_uu"), "output: {text}");
    // the emitted text is valid Prolog
    prolog_syntax::parse_program(&text).expect("output parses");
}

#[test]
fn writes_output_file_and_report() {
    let input = tmp("in2.pl");
    let output = tmp("out2.pl");
    std::fs::write(&input, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_reorder-prolog"))
        .arg(&input)
        .arg("-o")
        .arg(&output)
        .arg("--report")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grandmother/2"), "stderr: {stderr}");
    let written = std::fs::read_to_string(&output).unwrap();
    prolog_syntax::parse_program(&written).expect("written file parses");
}

#[test]
fn flags_disable_passes() {
    let input = tmp("in3.pl");
    std::fs::write(&input, PROGRAM).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_reorder-prolog"))
        .arg(&input)
        .arg("--no-specialize")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("_uu"), "no versions expected: {text}");
}

#[test]
fn missing_input_is_an_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_reorder-prolog"))
        .arg("/nonexistent/path.pl")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn parse_errors_are_reported_with_positions() {
    let input = tmp("bad.pl");
    std::fs::write(&input, "p(.\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_reorder-prolog"))
        .arg(&input)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
}
