//! The reorderer's headline property, checked on randomly generated
//! programs: **set-equivalence** (§II). For any program drawn from a
//! family of pure-plus-negation database programs, and any query, the
//! reordered program produces exactly the same set of answers.

use prolog_engine::Engine;
use prolog_syntax::parse_program;
use proptest::prelude::*;
use reorder::{ReorderConfig, Reorderer};

/// A random two-layer database program: fact tables f/2 and g/2, and rule
/// predicates combining them with joins, tests, and (sometimes) negation.
#[derive(Debug, Clone)]
struct RandomProgram {
    f: Vec<(u8, u8)>,
    g: Vec<(u8, u8)>,
    rules: Vec<RuleShape>,
}

#[derive(Debug, Clone)]
enum RuleShape {
    /// r(X,Y) :- f(X,Z), g(Z,Y).
    Join,
    /// r(X,Y) :- g(X,Z), f(Z,Y).
    JoinFlipped,
    /// r(X,Y) :- f(X,Y), g(Y,X).
    Cross,
    /// r(X,Y) :- f(X,Z), g(Z,Y), X \== Y.
    JoinWithTest,
    /// r(X,Y) :- f(X,Z), g(Z,Y), \+ f(Y,X).
    JoinWithNegation,
}

fn rule_shape() -> impl Strategy<Value = RuleShape> {
    prop_oneof![
        Just(RuleShape::Join),
        Just(RuleShape::JoinFlipped),
        Just(RuleShape::Cross),
        Just(RuleShape::JoinWithTest),
        Just(RuleShape::JoinWithNegation),
    ]
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    (
        prop::collection::vec((0u8..6, 0u8..6), 1..10),
        prop::collection::vec((0u8..6, 0u8..6), 1..10),
        prop::collection::vec(rule_shape(), 1..4),
    )
        .prop_map(|(f, g, rules)| RandomProgram { f, g, rules })
}

impl RandomProgram {
    fn source(&self) -> String {
        let mut src = String::new();
        for (a, b) in &self.f {
            src.push_str(&format!("f(k{a}, k{b}).\n"));
        }
        for (a, b) in &self.g {
            src.push_str(&format!("g(k{a}, k{b}).\n"));
        }
        for (i, shape) in self.rules.iter().enumerate() {
            let body = match shape {
                RuleShape::Join => "f(X, Z), g(Z, Y)",
                RuleShape::JoinFlipped => "g(X, Z), f(Z, Y)",
                RuleShape::Cross => "f(X, Y), g(Y, X)",
                RuleShape::JoinWithTest => "f(X, Z), g(Z, Y), X \\== Y",
                RuleShape::JoinWithNegation => "f(X, Z), g(Z, Y), \\+ f(Y, X)",
            };
            src.push_str(&format!("r{i}(X, Y) :- {body}.\n"));
        }
        // a second layer joining the rules
        src.push_str("top(X, Y) :- r0(X, Z), r0(Z, Y).\n");
        src
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reordering_preserves_solution_sets(prog in random_program()) {
        let program = parse_program(&prog.source()).unwrap();
        let result = Reorderer::new(&program, ReorderConfig::default()).run();

        let mut original = Engine::new();
        original.load(&program);
        let mut reordered = Engine::new();
        reordered.load(&result.program);

        let mut queries = vec![
            "top(X, Y)".to_string(),
            "top(k0, Y)".to_string(),
            "top(X, k1)".to_string(),
            "top(k2, k3)".to_string(),
        ];
        for i in 0..prog.rules.len() {
            queries.push(format!("r{i}(X, Y)"));
            queries.push(format!("r{i}(k1, Y)"));
            queries.push(format!("r{i}(X, k0)"));
            queries.push(format!("r{i}(k2, k2)"));
        }
        for q in &queries {
            let a = original.query(q).expect("original runs").solution_set();
            let b = reordered.query(q).expect("reordered runs").solution_set();
            prop_assert_eq!(a, b, "query {} on\n{}", q, prog.source());
        }
    }

    #[test]
    fn reordering_never_makes_queries_error(prog in random_program()) {
        let program = parse_program(&prog.source()).unwrap();
        let result = Reorderer::new(&program, ReorderConfig::default()).run();
        let mut engine = Engine::new();
        engine.load(&result.program);
        for q in ["top(X, Y)", "r0(X, Y)"] {
            prop_assert!(engine.query(q).is_ok(), "query {} errored", q);
        }
    }

    #[test]
    fn emitted_programs_always_reparse(prog in random_program()) {
        let program = parse_program(&prog.source()).unwrap();
        let result = Reorderer::new(&program, ReorderConfig::default()).run();
        let text = prolog_syntax::pretty::program_to_string(&result.program);
        prop_assert!(parse_program(&text).is_ok(), "unparseable output:\n{}", text);
    }
}
