//! Calibration-override semantics (`reorder::empirical`): measured
//! `(predicate, mode)` pairs replace the static estimates — and *only*
//! those pairs — and modes the engine cannot finish within the
//! calibration budget are discarded rather than guessed at.

use prolog_analysis::{Mode, ProgramAnalysis};
use prolog_syntax::{parse_program, PredId, Term};
use reorder::costs::p_to_solutions;
use reorder::{calibrate, CalibrationConfig, Estimator, ModeOracle, ReorderConfig, Reorderer};

fn universe(names: &[&str]) -> Vec<Term> {
    names.iter().map(|n| Term::atom(n)).collect()
}

/// `s(s(...(0)))`, `depth` constructors deep.
fn peano(depth: usize) -> Term {
    let mut t = Term::Int(0);
    for _ in 0..depth {
        t = Term::struct_(prolog_syntax::sym("s"), vec![t]);
    }
    t
}

#[test]
fn overrides_replace_static_estimates_only_for_measured_pairs() {
    let program = parse_program(
        "r(X) :- f(X), g(X).
         f(a). f(b). f(c).
         g(a).",
    )
    .unwrap();
    let f = PredId::new("f", 1);
    let g = PredId::new("g", 1);

    // Calibrate f/1 only.
    let measured = calibrate(
        &program,
        &[f],
        &universe(&["a", "b", "c"]),
        &CalibrationConfig::default(),
    );
    assert!(
        measured.keys().all(|(pred, _)| *pred == f),
        "calibration must return only the requested predicates: {measured:?}"
    );
    let minus = Mode::parse("-").unwrap();
    let plus = Mode::parse("+").unwrap();
    assert!(measured.contains_key(&(f, minus.clone())));
    assert!(measured.contains_key(&(f, plus.clone())));

    // Static estimates first, then install the measured ones.
    let analysis = ProgramAnalysis::analyze(&program);
    let oracle = ModeOracle::new(&program, &analysis.declarations);
    let config = ReorderConfig::default();
    let est = Estimator::new(
        &program,
        &oracle,
        &analysis.declarations,
        &analysis.recursion,
        &config,
    );
    let g_static = est.stats(g, &minus);
    let f_static = est.stats(f, &minus);
    for ((pred, mode), stats) in &measured {
        est.install_override(*pred, mode.clone(), *stats);
    }

    // Measured pairs now answer with the measured numbers…
    let f_now = est.stats(f, &minus);
    assert_eq!(
        f_now,
        measured[&(f, minus.clone())],
        "measured (f/1, -) must replace the static estimate"
    );
    assert!(
        (p_to_solutions(f_now.p) - 3.0).abs() < 1e-9,
        "f/1 free mode really has 3 solutions, got p={}",
        f_now.p
    );
    // …even where the static estimate was already memoised beforehand.
    assert_eq!(est.stats(f, &plus), measured[&(f, plus)]);
    let _ = f_static;

    // Unmeasured predicates keep their static estimates, bit for bit.
    assert_eq!(
        est.stats(g, &minus),
        g_static,
        "g/1 was not calibrated; its estimate must not move"
    );
}

#[test]
fn divergent_modes_are_discarded_at_the_call_budget() {
    // r(0). r(s(X)) :- r(X). — mode (+) needs depth+1 calls for a peano
    // argument; mode (-) enumerates forever (with ever-growing solution
    // terms, so budgets here must stay small or the probe itself balloons).
    let program = parse_program("r(0). r(s(X)) :- r(X).").unwrap();
    let r = PredId::new("r", 1);
    let deep = vec![peano(200)];
    let minus = Mode::parse("-").unwrap();
    let plus = Mode::parse("+").unwrap();

    // Budget below the needed ~201 calls: the (+) measurement aborts and
    // the mode is discarded, exactly like a truly divergent one.
    let starved = calibrate(
        &program,
        &[r],
        &deep,
        &CalibrationConfig {
            max_calls_per_query: 50,
            ..Default::default()
        },
    );
    assert!(
        !starved.contains_key(&(r, plus.clone())),
        "a (+) probe that exceeds max_calls_per_query must be discarded"
    );

    // Budget above it: the same mode measures fine.
    let funded = calibrate(
        &program,
        &[r],
        &deep,
        &CalibrationConfig {
            max_calls_per_query: 2_000,
            ..Default::default()
        },
    );
    let stats = funded
        .get(&(r, plus))
        .expect("with budget to spare, (+) measures");
    assert!(
        (150.0..=400.0).contains(&stats.cost),
        "measured cost tracks the recursion depth, got {}",
        stats.cost
    );

    // The unbounded (-) enumeration is discarded at every budget.
    for costs in [&starved, &funded] {
        assert!(
            !costs.contains_key(&(r, minus.clone())),
            "divergent (-) mode must never be reported"
        );
    }
}

#[test]
fn reorderer_accepts_measured_costs_and_stays_equivalent() {
    // End-to-end: with_measured_costs flows calibration into the driver
    // and the reordered program still computes the same answers.
    let src = "
        pick(X) :- wide(X), narrow(X).
        wide(a). wide(b). wide(c). wide(d).
        narrow(d).
    ";
    let program = parse_program(src).unwrap();
    let measured = calibrate(
        &program,
        &[PredId::new("wide", 1), PredId::new("narrow", 1)],
        &universe(&["a", "b", "c", "d"]),
        &CalibrationConfig::default(),
    );
    assert!(!measured.is_empty());
    let result = Reorderer::new(&program, ReorderConfig::default())
        .with_measured_costs(measured)
        .run();
    // narrow/1 (1 solution) should be scheduled before wide/1 (4).
    let pick = result.program.clauses_of(PredId::new("pick", 1));
    let body = format!(
        "{:?}",
        pick.first().expect("pick/1 survives reordering").body
    );
    let narrow_at = body.find("narrow").expect("narrow in body");
    let wide_at = body.find("wide").expect("wide in body");
    assert!(
        narrow_at < wide_at,
        "measured costs order the cheap generator first: {body}"
    );
}
