//! The mode oracle: one place that answers "is this call legal, and what
//! comes back?" for the legality scanner and the cost estimator.
//!
//! Priority: user declarations, then the built-in table, then abstract
//! interpretation (§V-E). A call is legal only when one of the three
//! vouches for it — the paper's rule that legal modes must be a *subset*
//! of the modes in which the predicate functions.

use prolog_analysis::{Declarations, Mode, ModeInference, ModeItem};
use prolog_syntax::{PredId, SourceProgram};

/// Answers mode-legality queries for every predicate in the program.
pub struct ModeOracle<'p> {
    inference: ModeInference<'p>,
}

impl<'p> ModeOracle<'p> {
    /// Builds the oracle from the program and its declarations.
    pub fn new(program: &'p SourceProgram, declarations: &Declarations) -> ModeOracle<'p> {
        let inference =
            ModeInference::new(program).with_declarations(declarations.legal_modes.clone());
        ModeOracle { inference }
    }

    /// If calling `pred` in `mode` is legal, the output mode; else `None`.
    pub fn call(&self, pred: PredId, mode: &Mode) -> Option<Mode> {
        let summary = self.inference.call(pred, mode);
        if summary.clean {
            Some(summary.output)
        } else {
            None
        }
    }

    /// The legal `+`/`-` input modes of `pred` (used by the specialiser to
    /// decide which versions to emit).
    pub fn legal_plus_minus_modes(&self, pred: PredId) -> Vec<Mode> {
        Mode::enumerate_plus_minus(pred.arity)
            .into_iter()
            .filter(|m| self.call(pred, m).is_some())
            .collect()
    }

    /// `(hits, misses)` of the mode-inference pattern memo.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.inference.cache_counters()
    }

    /// Freezes the shared inference memo (see [`ModeInference::seal`]):
    /// call after the deterministic planning warm-up, before workers run.
    pub fn seal(&self) {
        self.inference.seal();
    }

    /// Clears this thread's scratch memo at a task boundary (see
    /// [`ModeInference::begin_task`]).
    pub fn begin_task(&self) {
        self.inference.begin_task();
    }

    /// Expected number of distinct `u`/`i` version suffixes for `pred`.
    pub fn version_count(&self, pred: PredId) -> usize {
        let mut suffixes: Vec<String> = self
            .legal_plus_minus_modes(pred)
            .iter()
            .map(Mode::suffix)
            .collect();
        suffixes.sort();
        suffixes.dedup();
        suffixes.len()
    }

    /// Collapses a `?` mode to the `+`/`-` mode its specialised version
    /// must serve: `?` is treated as `-` (the version must cope with an
    /// unbound argument).
    pub fn collapse(mode: &Mode) -> Mode {
        Mode::new(
            mode.items()
                .iter()
                .map(|m| match m {
                    ModeItem::Plus => ModeItem::Plus,
                    _ => ModeItem::Minus,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn id(name: &str, arity: usize) -> PredId {
        PredId::new(name, arity)
    }

    #[test]
    fn oracle_accepts_fact_predicates_in_all_modes() {
        let p = parse_program("mother(a, b). mother(c, d).").unwrap();
        let d = Declarations::default();
        let oracle = ModeOracle::new(&p, &d);
        assert_eq!(oracle.legal_plus_minus_modes(id("mother", 2)).len(), 4);
    }

    #[test]
    fn oracle_rejects_illegal_arithmetic_modes() {
        let p = parse_program("inc(X, Y) :- Y is X + 1.").unwrap();
        let d = Declarations::default();
        let oracle = ModeOracle::new(&p, &d);
        let legal = oracle.legal_plus_minus_modes(id("inc", 2));
        assert_eq!(legal.len(), 2); // (+,-) and (+,+)
        assert!(oracle
            .call(id("inc", 2), &Mode::parse("--").unwrap())
            .is_none());
    }

    #[test]
    fn declarations_override_inference() {
        let p = parse_program(
            ":- legal_mode(len(+, -), len(+, +)).
             len([], 0).
             len([_|T], N) :- len(T, M), N is M + 1.",
        )
        .unwrap();
        let d = Declarations::from_program(&p);
        let oracle = ModeOracle::new(&p, &d);
        assert!(oracle
            .call(id("len", 2), &Mode::parse("+-").unwrap())
            .is_some());
        assert!(oracle
            .call(id("len", 2), &Mode::parse("-+").unwrap())
            .is_none());
    }

    #[test]
    fn collapse_maps_any_to_minus() {
        let m = Mode::parse("+?-").unwrap();
        assert_eq!(ModeOracle::collapse(&m), Mode::parse("+--").unwrap());
    }
}
