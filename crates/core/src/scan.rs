//! The legality scanner (paper §VI-B.1).
//!
//! "We generate a potential order by instantiating a clause head with the
//! mode and scanning the clause goal by goal, keeping track of the
//! variables each goal demands and instantiates. As soon as an illegal
//! mode arises, we backtrack to generate another order, so that we test
//! only legal orders."
//!
//! [`scan_sequence`] walks a candidate order threading an
//! [`AbstractState`]; each goal is checked against the mode oracle and
//! annotated with its calling mode and [`GoalStats`]. Control constructs
//! are handled "as if they were bodies of short clauses" (§VI-B.1).

use crate::costs::{p_to_solutions, solutions_to_p, Estimator};
use prolog_analysis::{AbstractState, Mode, ModeItem};
use prolog_markov::{ClauseChain, GoalStats};
use prolog_syntax::{Body, Term};

/// A goal annotated by the scan.
#[derive(Debug, Clone)]
pub struct ScannedGoal {
    pub goal: Body,
    /// The mode the goal calls its predicate in (plain calls only).
    pub call_mode: Option<Mode>,
    pub stats: GoalStats,
}

/// The abstract state a clause starts in when called with `mode`:
/// head variables bound per the mode items, `+` positions first so
/// aliased variables pick up instantiation.
pub fn head_state(head: &Term, mode: &Mode) -> AbstractState {
    let mut state = AbstractState::default();
    let args = head.args();
    for pass in [ModeItem::Plus, ModeItem::Minus, ModeItem::Any] {
        for (arg, item) in args.iter().zip(mode.items()) {
            if *item == pass {
                state.bind_head_arg(arg, *item);
            }
        }
    }
    state
}

/// Scans `goals` in the given order. Returns `None` as soon as any goal
/// would be called in an illegal mode; otherwise the annotated goals, with
/// `state` updated to the post-sequence instantiations.
pub fn scan_sequence(
    goals: &[&Body],
    state: &mut AbstractState,
    est: &Estimator<'_>,
) -> Option<Vec<ScannedGoal>> {
    let mut out = Vec::with_capacity(goals.len());
    for goal in goals {
        out.push(scan_goal(goal, state, est)?);
    }
    Some(out)
}

/// Scans one goal (which may be a control construct).
pub fn scan_goal(
    goal: &Body,
    state: &mut AbstractState,
    est: &Estimator<'_>,
) -> Option<ScannedGoal> {
    match goal {
        Body::True => Some(ScannedGoal {
            goal: goal.clone(),
            call_mode: None,
            stats: GoalStats::new(solutions_to_p(1.0), 0.0),
        }),
        Body::Fail => Some(ScannedGoal {
            goal: goal.clone(),
            call_mode: None,
            stats: GoalStats::new(0.0, 0.0),
        }),
        Body::Cut => Some(ScannedGoal {
            goal: goal.clone(),
            call_mode: None,
            stats: GoalStats::new(solutions_to_p(1.0), 0.0),
        }),
        Body::Call(t) => {
            let pred = t.pred_id()?;
            let mode = Mode::new(t.args().iter().map(|a| state.abstraction(a)).collect());
            let output = est.oracle.call(pred, &mode)?;
            let stats = est.stats(pred, &mode);
            for (arg, item) in t.args().iter().zip(output.items()) {
                state.apply_output(arg, *item);
            }
            Some(ScannedGoal {
                goal: goal.clone(),
                call_mode: Some(mode),
                stats,
            })
        }
        Body::Not(g) => {
            // Negation: inner goals run in their own scope and export no
            // bindings. Succeeds iff the inner conjunction fails.
            let mut inner_state = state.clone();
            let inner = scan_sequence(&g.conjuncts(), &mut inner_state, est)?;
            let (p_inner, cost) = sequence_once_stats(&inner);
            Some(ScannedGoal {
                goal: goal.clone(),
                call_mode: None,
                stats: GoalStats::new(1.0 - p_inner, cost),
            })
        }
        Body::Or(a, b) => {
            // Both halves scanned from the same entry state; results join.
            let mut sa = state.clone();
            let ga = scan_sequence(&a.conjuncts(), &mut sa, est)?;
            let mut sb = state.clone();
            let gb = scan_sequence(&b.conjuncts(), &mut sb, est)?;
            *state = sa.join(&sb);
            let (ea, ca) = sequence_all_stats(&ga, est);
            let (eb, cb) = sequence_all_stats(&gb, est);
            Some(ScannedGoal {
                goal: goal.clone(),
                call_mode: None,
                stats: GoalStats::new(solutions_to_p(ea + eb), ca + cb),
            })
        }
        Body::IfThenElse(c, t, e) => {
            let mut sct = state.clone();
            let gc = scan_sequence(&c.conjuncts(), &mut sct, est)?;
            let gt = scan_sequence(&t.conjuncts(), &mut sct, est)?;
            let mut se = state.clone();
            let ge = scan_sequence(&e.conjuncts(), &mut se, est)?;
            *state = sct.join(&se);
            let (p_c, cost_c) = sequence_once_stats(&gc);
            let (e_t, cost_t) = sequence_all_stats(&gt, est);
            let (e_e, cost_e) = sequence_all_stats(&ge, est);
            let e = p_c * e_t + (1.0 - p_c) * e_e;
            let cost = cost_c + p_c * cost_t + (1.0 - p_c) * cost_e;
            Some(ScannedGoal {
                goal: goal.clone(),
                call_mode: None,
                stats: GoalStats::new(solutions_to_p(e), cost),
            })
        }
        Body::And(_, _) => {
            // Conjunction at goal position (inside a construct): treat as
            // a sub-clause.
            let inner = scan_sequence(&goal.conjuncts(), state, est)?;
            let (e, cost) = sequence_all_stats(&inner, est);
            Some(ScannedGoal {
                goal: goal.clone(),
                call_mode: None,
                stats: GoalStats::new(solutions_to_p(e), cost),
            })
        }
    }
}

/// Single-solution view of a scanned sequence: (success probability,
/// expected cost to first success or failure).
pub fn sequence_once_stats(goals: &[ScannedGoal]) -> (f64, f64) {
    if goals.is_empty() {
        return (1.0, 0.0);
    }
    let stats: Vec<GoalStats> = goals.iter().map(|g| g.stats).collect();
    let chain = ClauseChain::new(&stats);
    (chain.success_probability(), chain.single_solution_cost())
}

/// All-solutions view: (expected number of solutions, expected total cost)
/// under the estimator's configured cost model.
pub fn sequence_all_stats(goals: &[ScannedGoal], est: &Estimator<'_>) -> (f64, f64) {
    if goals.is_empty() {
        return (1.0, 0.0);
    }
    let stats: Vec<GoalStats> = goals.iter().map(|g| g.stats).collect();
    let chain = ClauseChain::new(&stats);
    (
        chain.expected_solutions().min(1.0e9),
        est.conjunction_cost(&chain),
    )
}

/// Expected solutions of one scanned goal.
pub fn goal_solutions(g: &ScannedGoal) -> f64 {
    p_to_solutions(g.stats.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReorderConfig;
    use crate::oracle::ModeOracle;
    use prolog_analysis::{CallGraph, Declarations, RecursionAnalysis};
    use prolog_syntax::parse_program;

    struct Fixture {
        program: prolog_syntax::SourceProgram,
        declarations: Declarations,
        recursion: RecursionAnalysis,
        config: ReorderConfig,
    }

    impl Fixture {
        fn new(src: &str) -> Fixture {
            let program = parse_program(src).unwrap();
            let declarations = Declarations::from_program(&program);
            let recursion = RecursionAnalysis::compute(&CallGraph::build(&program));
            Fixture {
                program,
                declarations,
                recursion,
                config: ReorderConfig::default(),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&Estimator<'_>) -> R) -> R {
            let oracle = ModeOracle::new(&self.program, &self.declarations);
            let est = Estimator::new(
                &self.program,
                &oracle,
                &self.declarations,
                &self.recursion,
                &self.config,
            );
            f(&est)
        }
    }

    #[test]
    fn scan_accepts_legal_orders_and_rejects_illegal() {
        let fx = Fixture::new("inc(X, Y) :- Y is X + 1. p(1). q(2).");
        fx.with(|est| {
            let program = est.program();
            let clause = &program.clauses_of(prolog_syntax::PredId::new("inc", 2))[0];
            // legal: head mode (+,-)
            let mut st = head_state(&clause.head, &Mode::parse("+-").unwrap());
            assert!(scan_sequence(&clause.body.conjuncts(), &mut st, est).is_some());
            // illegal: head mode (-,-) makes `is` unclean
            let mut st = head_state(&clause.head, &Mode::parse("--").unwrap());
            assert!(scan_sequence(&clause.body.conjuncts(), &mut st, est).is_none());
        });
    }

    #[test]
    fn scan_threads_instantiations_left_to_right() {
        let fx = Fixture::new(
            "chain(X, Z) :- step(X, Y), step(Y, Z).
             step(a, b). step(b, c).",
        );
        fx.with(|est| {
            let program = est.program();
            let clause = &program.clauses_of(prolog_syntax::PredId::new("chain", 2))[0];
            let mut st = head_state(&clause.head, &Mode::parse("+-").unwrap());
            let scanned = scan_sequence(&clause.body.conjuncts(), &mut st, est).expect("legal");
            // first step called (+,-), second (+,-) because Y is now bound
            assert_eq!(scanned[0].call_mode, Some(Mode::parse("+-").unwrap()));
            assert_eq!(scanned[1].call_mode, Some(Mode::parse("+-").unwrap()));
        });
    }

    #[test]
    fn bound_calls_are_cheaper_tests_than_free_generators() {
        let fx = Fixture::new("f(a). f(b). f(c). f(d).");
        fx.with(|est| {
            let pred = prolog_syntax::PredId::new("f", 1);
            let free = est.stats(pred, &Mode::parse("-").unwrap());
            let bound = est.stats(pred, &Mode::parse("+").unwrap());
            // free call: ~4 expected solutions; bound call: ~1
            assert!(p_to_solutions(free.p) > p_to_solutions(bound.p));
        });
    }

    #[test]
    fn negation_scans_inner_goals_without_exporting() {
        let fx = Fixture::new("m(X) :- \\+ f(X). f(a).");
        fx.with(|est| {
            let clause = &est.program().clauses_of(prolog_syntax::PredId::new("m", 1))[0];
            let mut st = head_state(&clause.head, &Mode::parse("+").unwrap());
            let scanned = scan_sequence(&clause.body.conjuncts(), &mut st, est).unwrap();
            assert_eq!(scanned.len(), 1);
            assert!(scanned[0].call_mode.is_none());
            assert!(scanned[0].stats.p < 1.0);
        });
    }

    #[test]
    fn rule_costs_exceed_fact_costs() {
        let fx = Fixture::new(
            "direct(a, b).
             indirect(X, Z) :- direct(X, Y), direct(Y, Z).",
        );
        fx.with(|est| {
            let fact = est.stats(
                prolog_syntax::PredId::new("direct", 2),
                &Mode::parse("--").unwrap(),
            );
            let rule = est.stats(
                prolog_syntax::PredId::new("indirect", 2),
                &Mode::parse("--").unwrap(),
            );
            assert_eq!(fact.cost, 1.0);
            assert!(rule.cost > fact.cost);
        });
    }

    #[test]
    fn recursive_predicates_get_finite_stats() {
        let fx = Fixture::new(
            "app([], X, X).
             app([H|T], Y, [H|Z]) :- app(T, Y, Z).",
        );
        fx.with(|est| {
            let s = est.stats(
                prolog_syntax::PredId::new("app", 3),
                &Mode::parse("++-").unwrap(),
            );
            assert!(s.cost.is_finite() && s.cost > 0.0);
            assert!(s.p > 0.0 && s.p < 1.0);
        });
    }

    #[test]
    fn declared_costs_win() {
        let fx = Fixture::new(
            ":- cost(magic/1, '-', 123.0, 0.9).
             magic(X) :- slow(X), slow(X), slow(X).
             slow(1).",
        );
        fx.with(|est| {
            let s = est.stats(
                prolog_syntax::PredId::new("magic", 1),
                &Mode::parse("-").unwrap(),
            );
            assert_eq!(s.cost, 123.0);
            assert_eq!(s.p, 0.9);
        });
    }
}
