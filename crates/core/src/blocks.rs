//! Mobility blocks (paper §IV, Table I).
//!
//! A clause body is split into *blocks*: maximal runs of mobile goals
//! (reorderable among themselves) separated by immobile goals. The rules,
//! straight from Table I:
//!
//! * a goal calling a **fixed** predicate is immobile (§IV-B);
//! * the **cut** immobilizes itself *and every goal preceding it*
//!   (§IV-D.1) — reordering them would preserve only tree-equivalence;
//! * explicit **disjunctions** and **if-then-else** are semipermeable:
//!   goals may not cross their boundary, so the construct is kept as one
//!   immobile unit (its internal conjunctions are reordered separately);
//! * **negation** moves as a unit (its argument's goals stay inside), and
//!   its crossing constraints (semifixed in all its variables, §IV-D.5)
//!   are enforced by the order search.

use prolog_analysis::FixityAnalysis;
use prolog_syntax::Body;

/// One block of a clause body.
#[derive(Debug, Clone)]
pub struct Block {
    pub goals: Vec<Body>,
    /// May the goals in this block be permuted?
    pub mobile: bool,
}

/// Splits the top-level conjunction of a body into blocks.
pub fn split_blocks(conjuncts: &[&Body], fixity: &FixityAnalysis) -> Vec<Block> {
    let mut blocks: Vec<Block> = Vec::new();
    // Everything up to and including the last top-level cut is frozen.
    let frozen_prefix = conjuncts
        .iter()
        .rposition(|g| matches!(g, Body::Cut))
        .map(|i| i + 1)
        .unwrap_or(0);
    if frozen_prefix > 0 {
        blocks.push(Block {
            goals: conjuncts[..frozen_prefix]
                .iter()
                .map(|g| (*g).clone())
                .collect(),
            mobile: false,
        });
    }
    let mut run: Vec<Body> = Vec::new();
    for goal in &conjuncts[frozen_prefix..] {
        if is_mobile(goal, fixity) {
            run.push((*goal).clone());
        } else {
            if !run.is_empty() {
                blocks.push(Block {
                    goals: std::mem::take(&mut run),
                    mobile: true,
                });
            }
            blocks.push(Block {
                goals: vec![(*goal).clone()],
                mobile: false,
            });
        }
    }
    if !run.is_empty() {
        blocks.push(Block {
            goals: run,
            mobile: true,
        });
    }
    blocks
}

/// May this goal be moved within its clause?
pub fn is_mobile(goal: &Body, fixity: &FixityAnalysis) -> bool {
    match goal {
        // Fixed goals (side effects anywhere inside) are immobile.
        g if fixity.goal_is_fixed(g) => false,
        // Plain calls and negations move (negation's crossing constraints
        // are enforced during the search).
        Body::Call(_) | Body::Not(_) => true,
        // Disjunctions and if-then-else stay put (conservative: the paper
        // allows moving a whole side-effect-free disjunction, but the
        // interactions with duplicated goals are subtle; see §IV-D.2).
        Body::Or(_, _) | Body::IfThenElse(_, _, _) | Body::And(_, _) => false,
        Body::True | Body::Fail | Body::Cut => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_analysis::CallGraph;
    use prolog_syntax::parse_program;

    fn blocks_of(src: &str) -> Vec<(usize, bool)> {
        let p = parse_program(src).unwrap();
        let g = CallGraph::build(&p);
        let fixity = FixityAnalysis::compute(&p, &g);
        let body = &p.clauses[0].body;
        split_blocks(&body.conjuncts(), &fixity)
            .into_iter()
            .map(|b| (b.goals.len(), b.mobile))
            .collect()
    }

    #[test]
    fn pure_body_is_one_mobile_block() {
        let b = blocks_of("p(X) :- a(X), b(X), c(X). a(1). b(1). c(1).");
        assert_eq!(b, vec![(3, true)]);
    }

    #[test]
    fn fixed_goal_splits_blocks() {
        // §VI-B.1: "if the third goal of a five-goal clause is fixed, the
        // number [of permutations] plummets from 5! = 120 to 2!·2! = 4."
        let b = blocks_of(
            "p(X) :- a(X), b(X), write(X), c(X), d(X).
             a(1). b(1). c(1). d(1).",
        );
        assert_eq!(b, vec![(2, true), (1, false), (2, true)]);
    }

    #[test]
    fn cut_freezes_its_prefix() {
        let b = blocks_of("p(X) :- a(X), b(X), !, c(X), d(X). a(1). b(1). c(1). d(1).");
        assert_eq!(b, vec![(3, false), (2, true)]);
    }

    #[test]
    fn last_cut_governs() {
        let b = blocks_of("p(X) :- a(X), !, b(X), !, c(X). a(1). b(1). c(1).");
        assert_eq!(b, vec![(4, false), (1, true)]);
    }

    #[test]
    fn disjunction_is_an_immobile_unit() {
        let b = blocks_of("p(X) :- a(X), (b(X) ; c(X)), d(X). a(1). b(1). c(1). d(1).");
        assert_eq!(b, vec![(1, true), (1, false), (1, true)]);
    }

    #[test]
    fn negation_is_mobile() {
        let b = blocks_of("p(X) :- a(X), \\+ b(X), c(X). a(1). b(1). c(1).");
        assert_eq!(b, vec![(3, true)]);
    }

    #[test]
    fn negation_containing_write_is_fixed() {
        let b = blocks_of("p(X) :- a(X), \\+ (b(X), write(X)), c(X). a(1). b(1). c(1).");
        assert_eq!(b, vec![(1, true), (1, false), (1, true)]);
    }

    #[test]
    fn predicate_calling_writer_is_fixed_goal() {
        let b = blocks_of(
            "p(X) :- a(X), logger(X), c(X).
             logger(X) :- write(X), nl.
             a(1). c(1).",
        );
        assert_eq!(b, vec![(1, true), (1, false), (1, true)]);
    }
}
