//! The reordering system as a command-line tool — the paper's Fig. 3
//! pipeline: program in, reordered program out, with the decision report
//! on stderr.
//!
//! ```text
//! usage: reorder-prolog INPUT.pl [-o OUTPUT.pl] [--report] [--timings]
//!                       [--timings-json] [--jobs N] [--no-specialize]
//!                       [--no-goals] [--no-clauses] [--unfold]
//!                       [--calibrate N] [--calibrate-report] [--engine KIND]
//!                       [--markov-model] [--trace-out PATH] [--trace-summary]
//!                       [--backend sld|datalog] [--datalog-report]
//!                       [--datalog-order STRATEGY]
//! ```
//!
//! `INPUT.pl` may be `-` to read the program from stdin. Parse errors
//! exit nonzero with a `file:line:col: message` diagnostic.
//!
//! `--backend datalog` routes the program through the bottom-up
//! semi-naive backend instead of the SLD pipeline: the Datalog-safe
//! fragment is certified, evaluated bottom-up, and the join orders the
//! evaluator chose are written back onto the pure-conjunction clause
//! bodies of the emitted program. `--datalog-report` prints the
//! safety/stratification certificate and evaluation statistics on
//! stderr (and implies `--backend datalog`).

use prolog_datalog::{certify, evaluate, OrderStrategy};
use prolog_syntax::ast::{Body, SourceProgram};
use reorder::{CalibrationOptions, ReorderConfig, UnfoldConfig};
use std::io::Read;

/// Which evaluation pipeline `reorder-prolog` runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The paper's top-down pipeline (the default).
    Sld,
    /// The bottom-up semi-naive Datalog backend.
    Datalog,
}

/// Writes the evaluator's chosen join orders back onto the source: each
/// pure-conjunction rule body is re-emitted in its round-0 join order
/// (delta-rewritten recursive occurrences keep their per-round orders
/// internally; the round-0 order is the representative one). Clauses the
/// certifier rejected, facts, and disjunction-expanded clauses are
/// emitted unchanged.
fn datalog_reordered(source: &SourceProgram, eval: &prolog_datalog::Evaluation) -> SourceProgram {
    let mut out = source.clone();
    for (ri, rule) in eval.program().rules.iter().enumerate() {
        let Some(map) = &rule.conjunct_map else {
            continue;
        };
        let order = &eval.rule_orders[ri];
        if order.len() != map.len() {
            continue;
        }
        let clause = &mut out.clauses[rule.clause_index];
        // Mirror the certifier's goal list: a pure conjunction with any
        // `true` conjuncts dropped (they compile to nothing).
        let goals: Vec<Body> = clause
            .body
            .conjuncts()
            .into_iter()
            .filter(|g| !matches!(g, Body::True))
            .cloned()
            .collect();
        if map.iter().any(|&gi| gi >= goals.len()) {
            continue;
        }
        let mut chosen: Vec<usize> = order.iter().map(|&li| map[li]).collect();
        for gi in 0..goals.len() {
            if !chosen.contains(&gi) {
                chosen.push(gi);
            }
        }
        let reordered: Vec<Body> = chosen.into_iter().map(|gi| goals[gi].clone()).collect();
        clause.body = Body::conjoin(&reordered);
    }
    out
}

/// The `--backend datalog` path: certify, evaluate bottom-up, emit the
/// program with evaluator-chosen body orders. Returns the emitted text.
fn run_datalog(src: &str, name: &str, strategy: OrderStrategy, report: bool) -> String {
    let program = match prolog_syntax::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {name}:{}:{}: {}", e.pos.line, e.pos.col, e.message);
            std::process::exit(1);
        }
    };
    let cert = certify(&program);
    let eval = evaluate(&cert, strategy);
    if report {
        eprint!("{}", prolog_datalog::render_certification(&cert));
        eprint!("{}", prolog_datalog::render_evaluation(&eval));
    }
    prolog_syntax::pretty::program_to_string(&datalog_reordered(&program, &eval))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut report = false;
    let mut timings = false;
    let mut timings_json = false;
    let mut unfold = false;
    let mut calibrate_rounds: Option<usize> = None;
    let mut calibrate_report = false;
    let mut trace_out: Option<String> = None;
    let mut trace_summary = false;
    let mut backend = Backend::Sld;
    let mut datalog_report = false;
    let mut datalog_order = OrderStrategy::ChainCost;
    let mut engine = prolog_engine::EngineKind::default();
    let mut config = ReorderConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
                if output.is_none() {
                    eprintln!("error: -o needs a path");
                    std::process::exit(2);
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                config.jobs = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) => n,
                    _ => {
                        eprintln!("error: --jobs needs a number (0 = auto)");
                        std::process::exit(2);
                    }
                };
            }
            "--report" => report = true,
            "--timings" => timings = true,
            "--timings-json" => timings_json = true,
            "--no-specialize" => config.specialize_modes = false,
            "--no-goals" => config.reorder_goals = false,
            "--no-clauses" => config.reorder_clauses = false,
            "--unfold" => unfold = true,
            "--calibrate" => {
                i += 1;
                calibrate_rounds = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("error: --calibrate needs a round count (>= 1)");
                        std::process::exit(2);
                    }
                };
            }
            "--calibrate-report" => calibrate_report = true,
            "--markov-model" => config.cost_model = reorder::CostModelKind::MarkovChain,
            "--trace-out" => {
                i += 1;
                trace_out = args.get(i).cloned();
                if trace_out.is_none() {
                    eprintln!("error: --trace-out needs a path");
                    std::process::exit(2);
                }
            }
            "--trace-summary" => trace_summary = true,
            "--engine" => {
                i += 1;
                engine = match args
                    .get(i)
                    .and_then(|s| prolog_engine::EngineKind::parse(s))
                {
                    Some(kind) => kind,
                    None => {
                        eprintln!("error: --engine needs `interp` or `compiled`");
                        std::process::exit(2);
                    }
                };
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(String::as_str) {
                    Some("sld") => Backend::Sld,
                    Some("datalog") => Backend::Datalog,
                    _ => {
                        eprintln!("error: --backend needs `sld` or `datalog`");
                        std::process::exit(2);
                    }
                };
            }
            "--datalog-report" => {
                datalog_report = true;
                backend = Backend::Datalog;
            }
            "--datalog-order" => {
                i += 1;
                datalog_order = match args.get(i).and_then(|s| OrderStrategy::parse(s)) {
                    Some(strategy) => strategy,
                    None => {
                        eprintln!(
                            "error: --datalog-order needs as-written | bound-first | chain-cost"
                        );
                        std::process::exit(2);
                    }
                };
                backend = Backend::Datalog;
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: reorder-prolog INPUT.pl [-o OUTPUT.pl] [--report] \
                     [--timings] [--timings-json] [--jobs N] [--no-specialize] \
                     [--no-goals] [--no-clauses] [--unfold] [--markov-model]\n\
                     \n\
                     INPUT.pl may be - to read the program from stdin\n\
                     --jobs N        worker threads for the reordering stage \
                     (0 = all cores, 1 = serial; output is identical either way)\n\
                     --calibrate N   run up to N measure -> re-plan rounds: \
                     predicate costs are measured on the real engine and fed \
                     back as estimates until the plan reaches a fixed point\n\
                     --calibrate-report  print the calibration round log and \
                     the static-vs-measured divergence table on stderr \
                     (implies --calibrate 2 unless given)\n\
                     --engine E      engine for --calibrate measurement runs: \
                     interp (default) or compiled (same counts, lower wall time)\n\
                     --timings       print per-stage wall-clock and cache counters \
                     on stderr\n\
                     --timings-json  print the same stats as one JSON object \
                     on stderr\n\
                     --trace-out PATH  enable tracing; write a Chrome trace-event \
                     JSON of the run to PATH (load in chrome://tracing)\n\
                     --trace-summary   enable tracing; print a per-span profile \
                     table on stderr\n\
                     --backend B     sld (default) or datalog: evaluate the \
                     Datalog-safe fragment bottom-up (semi-naive) and emit the \
                     program with the evaluator's chosen join orders\n\
                     --datalog-report  print the safety/stratification \
                     certificate and evaluation statistics on stderr \
                     (implies --backend datalog)\n\
                     --datalog-order S  join-order strategy: as-written | \
                     bound-first | chain-cost (default; implies --backend datalog)"
                );
                return;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("error: no input file (try --help)");
        std::process::exit(2);
    };
    let (name, src) = if input == "-" {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("error: cannot read stdin: {e}");
            std::process::exit(1);
        }
        ("<stdin>".to_string(), src)
    } else {
        match std::fs::read_to_string(&input) {
            Ok(s) => (input.clone(), s),
            Err(e) => {
                eprintln!("error: cannot read {input}: {e}");
                std::process::exit(1);
            }
        }
    };

    if trace_out.is_some() || trace_summary {
        prolog_trace::enable();
    }
    if backend == Backend::Datalog {
        if calibrate_rounds.is_some() || unfold {
            eprintln!("error: --backend datalog cannot be combined with --calibrate or --unfold");
            std::process::exit(2);
        }
        let text = run_datalog(&src, &name, datalog_order, datalog_report);
        if trace_out.is_some() || trace_summary {
            let trace = prolog_trace::drain();
            if let Some(path) = &trace_out {
                if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
                    eprintln!("error: cannot write trace to {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("% trace: {} events -> {path}", trace.records.len());
            }
            if trace_summary {
                eprint!("{}", trace.summary());
            }
        }
        match output {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("% wrote {path}");
            }
            None => print!("{text}"),
        }
        return;
    }
    if calibrate_report && calibrate_rounds.is_none() {
        calibrate_rounds = Some(CalibrationOptions::default().rounds);
    }
    if calibrate_rounds.is_some() && unfold {
        eprintln!("error: --calibrate cannot be combined with --unfold");
        std::process::exit(2);
    }
    let unfold_config = unfold.then(UnfoldConfig::default);
    let outcome = match calibrate_rounds {
        Some(rounds) => {
            let opts = CalibrationOptions {
                rounds,
                sample: reorder::CalibrationConfig {
                    engine,
                    ..Default::default()
                },
                ..Default::default()
            };
            match reorder::calibrate_source(&src, &config, &opts) {
                Ok((outcome, calibration)) => {
                    if calibrate_report {
                        eprint!("{}", calibration.render());
                    }
                    outcome
                }
                Err(e) => {
                    eprintln!("error: {name}:{}:{}: {}", e.pos.line, e.pos.col, e.message);
                    std::process::exit(1);
                }
            }
        }
        None => match reorder::reorder_source_with(&src, &config, unfold_config.as_ref()) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("error: {name}:{}:{}: {}", e.pos.line, e.pos.col, e.message);
                std::process::exit(1);
            }
        },
    };
    if unfold {
        eprintln!("% unfolded {} goals", outcome.unfolded_goals);
    }
    if report {
        eprintln!("{}", outcome.report);
    }
    if timings {
        eprint!("{}", outcome.report.stats.render());
    }
    if timings_json {
        eprintln!("{}", outcome.report.stats.to_json());
    }
    for warning in &outcome.report.warnings {
        eprintln!("warning: {warning}");
    }
    if trace_out.is_some() || trace_summary {
        let trace = prolog_trace::drain();
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
                eprintln!("error: cannot write trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("% trace: {} events -> {path}", trace.records.len());
        }
        if trace_summary {
            eprint!("{}", trace.summary());
        }
    }

    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &outcome.text) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("% wrote {path}");
        }
        None => print!("{}", outcome.text),
    }
}
