//! The reordering system as a command-line tool — the paper's Fig. 3
//! pipeline: program in, reordered program out, with the decision report
//! on stderr.
//!
//! ```text
//! usage: reorder-prolog INPUT.pl [-o OUTPUT.pl] [--report] [--timings]
//!                       [--jobs N] [--no-specialize] [--no-goals]
//!                       [--no-clauses] [--unfold] [--markov-model]
//! ```

use reorder::{ReorderConfig, Reorderer, UnfoldConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut report = false;
    let mut timings = false;
    let mut unfold = false;
    let mut config = ReorderConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
                if output.is_none() {
                    eprintln!("error: -o needs a path");
                    std::process::exit(2);
                }
            }
            "--jobs" | "-j" => {
                i += 1;
                config.jobs = match args.get(i).map(|s| s.parse::<usize>()) {
                    Some(Ok(n)) => n,
                    _ => {
                        eprintln!("error: --jobs needs a number (0 = auto)");
                        std::process::exit(2);
                    }
                };
            }
            "--report" => report = true,
            "--timings" => timings = true,
            "--no-specialize" => config.specialize_modes = false,
            "--no-goals" => config.reorder_goals = false,
            "--no-clauses" => config.reorder_clauses = false,
            "--unfold" => unfold = true,
            "--markov-model" => config.cost_model = reorder::CostModelKind::MarkovChain,
            "-h" | "--help" => {
                eprintln!(
                    "usage: reorder-prolog INPUT.pl [-o OUTPUT.pl] [--report] \
                     [--timings] [--jobs N] [--no-specialize] [--no-goals] \
                     [--no-clauses] [--unfold] [--markov-model]\n\
                     \n\
                     --jobs N     worker threads for the reordering stage \
                     (0 = all cores, 1 = serial; output is identical either way)\n\
                     --timings    print per-stage wall-clock and cache counters \
                     on stderr"
                );
                return;
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("error: no input file (try --help)");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {input}: {e}");
            std::process::exit(1);
        }
    };
    let program = match prolog_syntax::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            std::process::exit(1);
        }
    };

    let program = if unfold {
        let (unfolded, n) = reorder::unfold_program(&program, &UnfoldConfig::default());
        eprintln!("% unfolded {n} goals");
        unfolded
    } else {
        program
    };
    let result = Reorderer::new(&program, config).run();
    if report {
        eprintln!("{}", result.report);
    }
    if timings {
        eprint!("{}", result.report.stats.render());
    }
    for warning in &result.report.warnings {
        eprintln!("warning: {warning}");
    }

    let text = prolog_syntax::pretty::program_to_string(&result.program);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("% wrote {path}");
        }
        None => print!("{text}"),
    }
}
