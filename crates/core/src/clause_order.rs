//! Clause reordering (paper §III-A).
//!
//! Clauses of a predicate are OR-branches: Li & Wah's result orders them
//! by decreasing `p/c` to minimise the expected cost of a first solution.
//! Restrictions (§IV): a clause is *fixed* — immobile within its predicate
//! — if it contains a cut or calls a fixed predicate anywhere in its body.
//! Mobile clauses are permuted only within contiguous runs between fixed
//! clauses, so a fixed clause never changes its position relative to any
//! other clause.

use prolog_analysis::FixityAnalysis;
use prolog_syntax::Clause;

/// Is this clause mobile within its predicate?
pub fn clause_is_mobile(clause: &Clause, fixity: &FixityAnalysis) -> bool {
    !clause.body.contains_cut() && !fixity.goal_is_fixed(&clause.body)
}

/// Chooses a clause order given per-clause `(p, cost)` stats. Returns the
/// permutation: `result[k]` is the original index of the clause that
/// should run `k`-th.
pub fn order_clauses(stats: &[(f64, f64)], mobile: &[bool]) -> Vec<usize> {
    assert_eq!(stats.len(), mobile.len());
    let n = stats.len();
    let mut result: Vec<usize> = (0..n).collect();
    let mut run_start = 0;
    for i in 0..=n {
        let boundary = i == n || !mobile[i];
        if boundary {
            sort_run(&mut result[run_start..i], stats);
            run_start = i + 1;
        }
    }
    result
}

/// Sorts one run of mobile clause indices by decreasing `p/c` (stable:
/// equal ratios keep source order, so reordering is deterministic).
fn sort_run(run: &mut [usize], stats: &[(f64, f64)]) {
    run.sort_by(|&a, &b| {
        let ra = ratio(stats[a]);
        let rb = ratio(stats[b]);
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn ratio((p, c): (f64, f64)) -> f64 {
    if c <= 0.0 {
        f64::INFINITY
    } else {
        p / c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_analysis::CallGraph;
    use prolog_syntax::parse_program;

    #[test]
    fn orders_by_decreasing_p_over_c() {
        // Fig. 1: p = (0.7, 0.8, 0.5, 0.9), c = (100, 80, 100, 40).
        // p/c = (0.007, 0.01, 0.005, 0.0225) → order 4, 2, 1, 3.
        let stats = [(0.7, 100.0), (0.8, 80.0), (0.5, 100.0), (0.9, 40.0)];
        let order = order_clauses(&stats, &[true; 4]);
        assert_eq!(order, vec![3, 1, 0, 2]);
    }

    #[test]
    fn fixed_clauses_partition_the_runs() {
        // clause 2 (index 2) fixed: runs are [0, 1] and [3, 4].
        let stats = [
            (0.1, 10.0), // 0.01
            (0.9, 10.0), // 0.09
            (0.5, 1.0),  // fixed, would otherwise be first
            (0.2, 10.0), // 0.02
            (0.8, 10.0), // 0.08
        ];
        let mobile = [true, true, false, true, true];
        let order = order_clauses(&stats, &mobile);
        assert_eq!(order, vec![1, 0, 2, 4, 3]);
    }

    #[test]
    fn all_fixed_keeps_source_order() {
        let stats = [(0.5, 1.0), (0.9, 1.0)];
        let order = order_clauses(&stats, &[false, false]);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn stability_on_ties() {
        let stats = [(0.5, 10.0), (0.5, 10.0), (0.5, 10.0)];
        let order = order_clauses(&stats, &[true; 3]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn zero_cost_sorts_first() {
        let stats = [(0.5, 10.0), (0.9, 0.0)];
        let order = order_clauses(&stats, &[true, true]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn clause_mobility_detection() {
        let p = parse_program(
            "a(X) :- b(X).
             a(X) :- b(X), !.
             a(X) :- write(X).
             b(1).",
        )
        .unwrap();
        let fixity = FixityAnalysis::compute(&p, &CallGraph::build(&p));
        assert!(clause_is_mobile(&p.clauses[0], &fixity));
        assert!(!clause_is_mobile(&p.clauses[1], &fixity)); // cut
        assert!(!clause_is_mobile(&p.clauses[2], &fixity)); // write
    }
}
