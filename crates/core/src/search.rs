//! Goal-order search (paper §VI-A.3, §VI-B.1).
//!
//! For a mobile block of `n` goals, the best legal order is found either
//! by exhaustive enumeration with legality pruning (small `n`) or by
//! best-first search à la Smith & Genesereth: nodes are ordered legal
//! prefixes, and the path cost is the all-solutions Markov-chain cost of
//! the prefix — an admissible heuristic because appending a goal can only
//! add cost (§VI-A.3). Both searches honour the semifixity constraint:
//! a culprit variable must have the same instantiation state at its goal's
//! activation as in the original order (§IV-C).

use crate::config::ReorderConfig;
use crate::costs::Estimator;
use crate::scan::{scan_goal, ScannedGoal};
use prolog_analysis::{AbstractState, ModeItem, SemifixityAnalysis};
use prolog_syntax::Body;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of ordering one mobile block.
#[derive(Debug, Clone)]
pub struct OrderOutcome {
    /// Permutation: `order[k]` is the index (into the input slice) of the
    /// goal that runs `k`-th.
    pub order: Vec<usize>,
    /// The goals, annotated, in the chosen order.
    pub scanned: Vec<ScannedGoal>,
    /// All-solutions expected cost of the block in the chosen order.
    pub cost: f64,
    /// Exit instantiation state after the block.
    pub exit_state: AbstractState,
    /// Number of orders the search examined (for reports/ablation).
    pub explored: usize,
    /// Candidate placements rejected by legality: culprit-state
    /// violations and goals unscannable in the candidate prefix's mode.
    pub rejected: usize,
}

/// Built-ins whose *meaning* depends on their arguments' instantiation:
/// semifixed in every variable (§IV-C names `var/1` as the canonical
/// example; identity tests and the set predicates behave likewise,
/// §IV-D.5–6).
fn builtin_is_instantiation_sensitive(name: &str) -> bool {
    matches!(
        name,
        "var"
            | "nonvar"
            | "atom"
            | "atomic"
            | "number"
            | "integer"
            | "float"
            | "compound"
            | "callable"
            | "ground"
            | "is_list"
            | "=="
            | "\\=="
            | "\\="
            | "@<"
            | "@>"
            | "@=<"
            | "@>="
            | "compare"
            | "findall"
            | "bagof"
            | "setof"
            | "not"
            | "\\+"
            | "call"
            | "forall"
            | "copy_term"
    )
}

/// The culprit variables of a goal: variables whose instantiation state at
/// this goal's activation must be preserved (§IV-C, §IV-D.5).
fn culprit_vars(goal: &Body, semifix: &SemifixityAnalysis) -> Vec<usize> {
    match goal {
        Body::Call(t) => {
            if t.pred_id()
                .is_some_and(|id| builtin_is_instantiation_sensitive(id.name.as_str()))
            {
                return t.variables();
            }
            semifix.culprit_vars_of_goal(t)
        }
        // Negation is semifixed in all its variables.
        Body::Not(g) => g.to_term().variables(),
        _ => Vec::new(),
    }
}

/// Finds the cheapest legal order of `goals` starting from `entry`.
/// Returns `None` when even the original order cannot be scanned (the
/// block is then left untouched by the caller).
pub fn best_order(
    goals: &[Body],
    entry: &AbstractState,
    est: &Estimator<'_>,
    semifix: &SemifixityAnalysis,
    config: &ReorderConfig,
) -> Option<OrderOutcome> {
    let n = goals.len();
    // Baseline: the original order. It also yields the culprit-state trace
    // that candidate orders must reproduce.
    let mut trace: Vec<Vec<(usize, ModeItem)>> = Vec::with_capacity(n);
    let mut base_state = entry.clone();
    let mut base_scanned = Vec::with_capacity(n);
    let mut base = Prefix::new(config.cost_model);
    for goal in goals {
        let culprits: Vec<(usize, ModeItem)> = culprit_vars(goal, semifix)
            .into_iter()
            .map(|v| (v, base_state.get(v)))
            .collect();
        trace.push(culprits);
        let scanned = scan_goal(goal, &mut base_state, est)?;
        base.push(&scanned);
        base_scanned.push(scanned);
    }
    let original = OrderOutcome {
        order: (0..n).collect(),
        scanned: base_scanned,
        cost: base.g,
        exit_state: base_state,
        explored: 1,
        rejected: 0,
    };
    if n <= 1 {
        return Some(original);
    }

    let (found, explored, rejected) = if n <= config.exhaustive_threshold {
        exhaustive(goals, entry, est, &trace, original.cost, config.cost_model)
    } else {
        astar(
            goals,
            entry,
            est,
            &trace,
            config.max_search_nodes,
            config.cost_model,
        )
    };
    match found {
        // Require a strict improvement; ties keep the source order.
        Some(better) if better.cost < original.cost - 1e-9 => Some(OrderOutcome {
            explored: explored + 1,
            rejected,
            ..better
        }),
        _ => Some(OrderOutcome {
            explored: explored + 1,
            rejected,
            ..original
        }),
    }
}

/// Incremental all-solutions cost of a goal prefix. Under the paper's
/// chain model, `v_i = (Π_{j<i} p_j) / (Π_{j≤i} (1−p_j))` visits at cost
/// `c_i` each; under the generator-tree refinement, each goal's full cost
/// once per `Π_{j<i} E_j` fresh activations. Both are monotone in prefix
/// extension, so either keeps the best-first search admissible.
#[derive(Debug, Clone)]
struct Prefix {
    model: crate::config::CostModelKind,
    prod_p: f64,
    prod_q: f64,
    /// Fresh activations of the next goal: Π E_j over placed goals.
    activations: f64,
    g: f64,
}

impl Prefix {
    fn new(model: crate::config::CostModelKind) -> Prefix {
        Prefix {
            model,
            prod_p: 1.0,
            prod_q: 1.0,
            activations: 1.0,
            g: 0.0,
        }
    }

    /// Positive floor for the running products: a long prefix of
    /// near-certain goals (each clamped to `1 − 1e-6`) multiplies
    /// `prod_q` below `f64::MIN_POSITIVE` after ~50 goals. Left to
    /// underflow to `0.0`, `visits` becomes `inf` and poisons both the
    /// branch-and-bound bound and every downstream comparison.
    const FLOOR: f64 = 1e-300;

    fn push(&mut self, goal: &ScannedGoal) {
        let s = goal.stats.clamped();
        match self.model {
            crate::config::CostModelKind::MarkovChain => {
                self.prod_q = (self.prod_q * (1.0 - s.p)).max(Self::FLOOR);
                let visits = self.prod_p / self.prod_q;
                self.g += visits * s.cost;
                self.prod_p *= s.p;
            }
            crate::config::CostModelKind::GeneratorTree => {
                self.g += self.activations * s.cost;
                // Symmetric guard: Π E_j overflows to inf just as easily
                // for a prefix of prolific generators.
                self.activations = (self.activations * (s.p / (1.0 - s.p))).min(1.0 / Self::FLOOR);
            }
        }
    }
}

/// Does placing `goal` now satisfy its culprit-state constraint?
fn culprits_ok(goal_idx: usize, state: &AbstractState, trace: &[Vec<(usize, ModeItem)>]) -> bool {
    trace[goal_idx]
        .iter()
        .all(|(v, item)| state.get(*v) == *item)
}

/// Depth-first enumeration with legality pruning and branch-and-bound.
/// Returns `(improvement, orders examined, placements rejected)`.
fn exhaustive(
    goals: &[Body],
    entry: &AbstractState,
    est: &Estimator<'_>,
    trace: &[Vec<(usize, ModeItem)>],
    bound: f64,
    model: crate::config::CostModelKind,
) -> (Option<OrderOutcome>, usize, usize) {
    struct Search<'a, 'p> {
        goals: &'a [Body],
        est: &'a Estimator<'p>,
        trace: &'a [Vec<(usize, ModeItem)>],
        best: Option<OrderOutcome>,
        bound: f64,
        explored: usize,
        rejected: usize,
    }

    impl Search<'_, '_> {
        fn dfs(
            &mut self,
            used: u64,
            order: &mut Vec<usize>,
            scanned: &mut Vec<ScannedGoal>,
            state: &AbstractState,
            prefix: &Prefix,
        ) {
            let n = self.goals.len();
            if order.len() == n {
                self.explored += 1;
                if prefix.g < self.bound - 1e-12 {
                    self.bound = prefix.g;
                    self.best = Some(OrderOutcome {
                        order: order.clone(),
                        scanned: scanned.clone(),
                        cost: prefix.g,
                        exit_state: state.clone(),
                        explored: 0,
                        rejected: 0,
                    });
                }
                return;
            }
            for i in 0..n {
                if used & (1 << i) != 0 {
                    continue;
                }
                if !culprits_ok(i, state, self.trace) {
                    self.rejected += 1;
                    continue;
                }
                let mut next_state = state.clone();
                let Some(sg) = scan_goal(&self.goals[i], &mut next_state, self.est) else {
                    self.rejected += 1;
                    continue; // illegal order: prune this branch
                };
                let mut next_prefix = prefix.clone();
                next_prefix.push(&sg);
                if next_prefix.g >= self.bound - 1e-12 {
                    continue; // cannot beat the incumbent
                }
                order.push(i);
                scanned.push(sg);
                self.dfs(used | (1 << i), order, scanned, &next_state, &next_prefix);
                order.pop();
                scanned.pop();
            }
        }
    }

    let mut search = Search {
        goals,
        est,
        trace,
        best: None,
        bound,
        explored: 0,
        rejected: 0,
    };
    search.dfs(
        0,
        &mut Vec::new(),
        &mut Vec::new(),
        entry,
        &Prefix::new(model),
    );
    (search.best, search.explored, search.rejected)
}

/// Best-first (uniform-cost) search over legal ordered prefixes.
/// Returns `(solution, nodes expanded, placements rejected)`.
fn astar(
    goals: &[Body],
    entry: &AbstractState,
    est: &Estimator<'_>,
    trace: &[Vec<(usize, ModeItem)>],
    max_nodes: usize,
    model: crate::config::CostModelKind,
) -> (Option<OrderOutcome>, usize, usize) {
    struct Node {
        order: Vec<usize>,
        scanned: Vec<ScannedGoal>,
        state: AbstractState,
        prefix: Prefix,
    }

    struct Entry(f64, usize); // (g, node index)

    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on g: reverse the comparison.
            other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
        }
    }

    let n = goals.len();
    let mut arena: Vec<Node> = vec![Node {
        order: Vec::new(),
        scanned: Vec::new(),
        state: entry.clone(),
        prefix: Prefix::new(model),
    }];
    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, 0));
    let mut expanded = 0;
    let mut rejected = 0;

    while let Some(Entry(g, idx)) = heap.pop() {
        expanded += 1;
        if expanded > max_nodes {
            // Search budget exhausted: caller keeps the original order.
            return (None, expanded, rejected);
        }
        let (order_len, used): (usize, u64) = {
            let node = &arena[idx];
            (
                node.order.len(),
                node.order.iter().fold(0, |m, &i| m | 1 << i),
            )
        };
        if order_len == n {
            let node = &arena[idx];
            let found = OrderOutcome {
                order: node.order.clone(),
                scanned: node.scanned.clone(),
                cost: g,
                exit_state: node.state.clone(),
                explored: expanded,
                rejected,
            };
            return (Some(found), expanded, rejected);
        }
        for (i, goal) in goals.iter().enumerate() {
            if used & (1 << i) != 0 {
                continue;
            }
            let (mut next_state, culps_ok) = {
                let node = &arena[idx];
                (node.state.clone(), culprits_ok(i, &node.state, trace))
            };
            if !culps_ok {
                rejected += 1;
                continue;
            }
            let Some(sg) = scan_goal(goal, &mut next_state, est) else {
                rejected += 1;
                continue;
            };
            let (mut order, mut scanned, mut prefix) = {
                let node = &arena[idx];
                (
                    node.order.clone(),
                    node.scanned.clone(),
                    node.prefix.clone(),
                )
            };
            prefix.push(&sg);
            order.push(i);
            scanned.push(sg);
            let g_new = prefix.g;
            arena.push(Node {
                order,
                scanned,
                state: next_state,
                prefix,
            });
            heap.push(Entry(g_new, arena.len() - 1));
        }
    }
    (None, expanded, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ModeOracle;
    use prolog_analysis::{CallGraph, Declarations, Mode, RecursionAnalysis};
    use prolog_syntax::parse_program;

    /// Runs best_order over the body of the first clause of `pred_src`,
    /// returning the chosen order of goal indices.
    fn choose(src: &str, head_mode: &str, threshold: usize) -> Vec<usize> {
        let program = parse_program(src).unwrap();
        let declarations = Declarations::from_program(&program);
        let graph = CallGraph::build(&program);
        let recursion = RecursionAnalysis::compute(&graph);
        let semifix = prolog_analysis::SemifixityAnalysis::compute(&program, &graph);
        let config = ReorderConfig {
            exhaustive_threshold: threshold,
            ..Default::default()
        };
        let oracle = ModeOracle::new(&program, &declarations);
        let est = Estimator::new(&program, &oracle, &declarations, &recursion, &config);
        let clause = &program.clauses[0];
        let goals: Vec<Body> = clause.body.conjuncts().into_iter().cloned().collect();
        let entry = crate::scan::head_state(&clause.head, &Mode::parse(head_mode).unwrap());
        let out = best_order(&goals, &entry, &est, &semifix, &config).expect("scannable");
        out.order
    }

    const GRANDMOTHER: &str = "
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
        grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
        parent(C, P) :- mother(C, P).
        parent(C, P) :- mother(C, M), wife(P, M).
        female(W) :- girl(W).
        female(W) :- wife(_, W).
        girl(g1). girl(g2). girl(g3).
        wife(h1, w1). wife(h2, w2). wife(h3, w3). wife(h4, w4).
        mother(c1, m1). mother(c2, m2). mother(c3, m3). mother(c4, m4).
        mother(c5, m1). mother(c6, m2). mother(c7, m3). mother(c8, m4).
        mother(m1, w1). mother(m2, w1). mother(m3, w2). mother(m4, w2).
    ";

    #[test]
    fn paper_intro_example_moves_female_first() {
        // §I-D: female/1 is cheap and instantiates GM; grandparent/2 is
        // expensive. The reorderer should put female(GM) first for the
        // uninstantiated mode.
        let order = choose(GRANDMOTHER, "--", 6);
        assert_eq!(order, vec![1, 0], "female should run before grandparent");
    }

    #[test]
    fn astar_agrees_with_exhaustive() {
        // Force the A* path with threshold 0 and compare.
        let ex = choose(GRANDMOTHER, "--", 6);
        let astar = choose(GRANDMOTHER, "--", 0);
        assert_eq!(ex, astar);
    }

    #[test]
    fn illegal_orders_are_never_chosen() {
        // inc demands X; the only legal order keeps gen(X) before it.
        let src = "
            p(Y) :- gen(X), inc(X, Y).
            gen(1). gen(2). gen(3). gen(4). gen(5).
            inc(X, Y) :- Y is X + 1.
        ";
        // Even though inc is cheap and would be 'better' first, it is
        // illegal first: order must stay [0, 1].
        let order = choose(src, "-", 6);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn cheap_test_moves_before_expensive_generator() {
        let src = "
            q(X) :- expensive(X, _), cheap(X).
            cheap(a1).
            expensive(X, Y) :- e1(X, Y1), e1(Y1, Y2), e1(Y2, Y).
            e1(a1, a2). e1(a2, a3). e1(a3, a4). e1(a4, a5). e1(a5, a6).
            e1(b1, b2). e1(b2, b3). e1(b3, b4). e1(b4, b5). e1(b5, b6).
        ";
        let order = choose(src, "-", 6);
        assert_eq!(order, vec![1, 0], "cheap test should lead");
    }

    #[test]
    fn negation_does_not_cross_its_binder() {
        // \+ taken(X) is semifixed in X: it must not run before gen(X)
        // instantiates X (its result would change).
        let src = "
            free(X) :- gen(X), \\+ taken(X).
            gen(1). gen(2). gen(3). gen(4). gen(5). gen(6). gen(7).
            taken(2). taken(3). taken(5).
        ";
        let order = choose(src, "-", 6);
        assert_eq!(order, vec![0, 1], "negation must stay after its binder");
    }

    #[test]
    fn single_goal_is_trivial() {
        let order = choose("one(X) :- only(X). only(1).", "-", 6);
        assert_eq!(order, vec![0]);
    }

    /// Regression: a long run of near-certain goals (clamped to
    /// `p = 1 − 1e-6`) used to underflow `prod_q` to `0.0` after ~50
    /// pushes, turning the visit count — and thus `g` — into `inf` and
    /// poisoning every branch-and-bound comparison downstream.
    #[test]
    fn markov_prefix_stays_finite_on_long_near_certain_chains() {
        let near_certain = ScannedGoal {
            goal: Body::True,
            call_mode: None,
            stats: prolog_markov::GoalStats::new(1.0, 1.0),
        };
        let mut prefix = Prefix::new(crate::config::CostModelKind::MarkovChain);
        for i in 0..200 {
            prefix.push(&near_certain);
            assert!(
                prefix.g.is_finite(),
                "g became non-finite after {} goals",
                i + 1
            );
        }
        assert!(prefix.prod_q > 0.0, "prod_q underflowed to zero");
        // The cost must still be usable as a branch-and-bound bound.
        assert!(prefix.g < f64::MAX);
    }

    #[test]
    fn generator_prefix_stays_finite_on_long_generator_chains() {
        let generator = ScannedGoal {
            goal: Body::True,
            call_mode: None,
            stats: prolog_markov::GoalStats::new(1.0, 1.0),
        };
        let mut prefix = Prefix::new(crate::config::CostModelKind::GeneratorTree);
        for _ in 0..200 {
            prefix.push(&generator);
        }
        assert!(prefix.activations.is_finite());
        assert!(prefix.g.is_finite());
    }
}
