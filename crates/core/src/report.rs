//! Reorderer reports: what was changed, why, and the predicted payoff.

use prolog_analysis::Mode;
use prolog_markov::GoalStats;
use prolog_syntax::PredId;
use std::fmt;

/// The full report for one reordering run.
#[derive(Debug, Default)]
pub struct ReorderReport {
    pub predicates: Vec<PredicateReport>,
    /// Problems the system wants the programmer to know about (the paper's
    /// "informs the programmer when it cannot infer properties").
    pub warnings: Vec<String>,
}

impl ReorderReport {
    pub fn predicate(&self, pred: PredId) -> Option<&PredicateReport> {
        self.predicates.iter().find(|p| p.pred == pred)
    }
}

/// Decisions for one predicate.
#[derive(Debug)]
pub struct PredicateReport {
    pub pred: PredId,
    /// `Some(reason)` when the predicate was left untouched.
    pub skipped: Option<String>,
    pub modes: Vec<ModeReport>,
}

/// Decisions for one calling mode of one predicate.
#[derive(Debug)]
pub struct ModeReport {
    pub mode: Mode,
    /// Name of the specialised version serving this mode.
    pub version: String,
    /// Estimated stats of the predicate in this mode before reordering.
    pub original: GoalStats,
    /// … and after.
    pub reordered: GoalStats,
    /// Chosen clause order (original indices).
    pub clause_order: Vec<usize>,
    /// Per clause (in *original* clause order): the permutation applied to
    /// its top-level goals.
    pub goal_orders: Vec<Vec<usize>>,
    /// Orders examined by the search (ablation metric).
    pub explored: usize,
}

impl ModeReport {
    /// Predicted cost improvement factor (>1 means the reordered version
    /// is predicted cheaper).
    pub fn predicted_speedup(&self) -> f64 {
        if self.reordered.cost <= 0.0 {
            1.0
        } else {
            self.original.cost / self.reordered.cost
        }
    }

    /// Did the reorderer change anything for this mode?
    pub fn changed(&self) -> bool {
        let identity_clauses = self.clause_order.iter().copied().eq(0..self.clause_order.len());
        let identity_goals = self
            .goal_orders
            .iter()
            .all(|o| o.iter().copied().eq(0..o.len()));
        !(identity_clauses && identity_goals)
    }
}

impl fmt::Display for ReorderReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pred in &self.predicates {
            match &pred.skipped {
                Some(reason) => writeln!(f, "{}: unchanged ({reason})", pred.pred)?,
                None => {
                    writeln!(f, "{}:", pred.pred)?;
                    for m in &pred.modes {
                        writeln!(
                            f,
                            "  mode {} -> {}  cost {:.2} -> {:.2}  (x{:.2}, {} orders examined)",
                            m.mode,
                            m.version,
                            m.original.cost,
                            m.reordered.cost,
                            m.predicted_speedup(),
                            m.explored,
                        )?;
                    }
                }
            }
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_changed() {
        let m = ModeReport {
            mode: Mode::parse("--").unwrap(),
            version: "p_uu".into(),
            original: GoalStats::new(0.5, 100.0),
            reordered: GoalStats::new(0.5, 25.0),
            clause_order: vec![0, 1],
            goal_orders: vec![vec![1, 0]],
            explored: 3,
        };
        assert!((m.predicted_speedup() - 4.0).abs() < 1e-12);
        assert!(m.changed());
        let id = ModeReport {
            mode: Mode::parse("-").unwrap(),
            version: "q_u".into(),
            original: GoalStats::new(0.5, 10.0),
            reordered: GoalStats::new(0.5, 10.0),
            clause_order: vec![0, 1, 2],
            goal_orders: vec![vec![0, 1], vec![0]],
            explored: 1,
        };
        assert!(!id.changed());
    }
}
