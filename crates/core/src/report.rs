//! Reorderer reports: what was changed, why, and the predicted payoff.

use prolog_analysis::Mode;
use prolog_markov::GoalStats;
use prolog_syntax::PredId;
use std::fmt;
use std::time::Duration;

/// The full report for one reordering run.
#[derive(Debug, Default, Clone)]
pub struct ReorderReport {
    pub predicates: Vec<PredicateReport>,
    /// Problems the system wants the programmer to know about (the paper's
    /// "informs the programmer when it cannot infer properties").
    pub warnings: Vec<String>,
    /// Stage timings and search/cache counters. Deliberately excluded
    /// from the report's `Display`: wall-clock and hit ratios vary with
    /// the worker count and machine, while the report text must stay
    /// byte-identical across `--jobs` settings. Rendered separately via
    /// [`RunStats::render`] (the CLI's `--timings` flag).
    pub stats: RunStats,
}

impl ReorderReport {
    pub fn predicate(&self, pred: PredId) -> Option<&PredicateReport> {
        self.predicates.iter().find(|p| p.pred == pred)
    }
}

/// Decisions for one predicate.
#[derive(Debug, Clone)]
pub struct PredicateReport {
    pub pred: PredId,
    /// `Some(reason)` when the predicate was left untouched.
    pub skipped: Option<String>,
    pub modes: Vec<ModeReport>,
}

/// Decisions for one calling mode of one predicate.
#[derive(Debug, Clone)]
pub struct ModeReport {
    pub mode: Mode,
    /// Name of the specialised version serving this mode.
    pub version: String,
    /// Estimated stats of the predicate in this mode before reordering.
    pub original: GoalStats,
    /// … and after.
    pub reordered: GoalStats,
    /// Chosen clause order (original indices).
    pub clause_order: Vec<usize>,
    /// Per clause (in *original* clause order): the permutation applied to
    /// its top-level goals.
    pub goal_orders: Vec<Vec<usize>>,
    /// Orders examined by the search (ablation metric).
    pub explored: usize,
    /// Candidate placements the search rejected as illegal (culprit-state
    /// violations and unscannable modes).
    pub rejected: usize,
}

/// Wall-clock stage timings and run-wide counters for one reordering run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Worker threads used by the reordering stage.
    pub jobs: usize,
    /// `(predicate, mode)` reordering tasks dispatched.
    pub tasks: usize,
    /// Planning: program analyses, fixity, mode oracle, task scheduling.
    pub planning: Duration,
    /// Per-`(predicate, mode)` reordering (the parallel stage).
    pub reordering: Duration,
    /// Version dedup, dispatcher synthesis, program and report assembly.
    pub emission: Duration,
    pub total: Duration,
    /// Orders examined across every search.
    pub orders_explored: usize,
    /// Placements rejected by legality across every search.
    pub orders_rejected: usize,
    /// Estimator `(predicate, mode)` memo hits/misses.
    pub estimate_hits: u64,
    pub estimate_misses: u64,
    /// Conjunction-cost (chain) memo hits/misses.
    pub chain_hits: u64,
    pub chain_misses: u64,
    /// Mode-inference pattern memo hits/misses.
    pub mode_hits: u64,
    pub mode_misses: u64,
}

impl RunStats {
    /// Machine-readable JSON encoding, one flat object with a stable key
    /// order. Durations are integer microseconds. This is the **shared
    /// encoder** behind both the CLI's `--timings-json` flag and the
    /// `reordd` server's `stats` reply, so the two surfaces can never
    /// drift apart. Encoded with the structured-event builder from
    /// `prolog-trace` ([`RunStats::to_fields`]), the same one span
    /// arguments use.
    pub fn to_json(&self) -> String {
        self.to_fields().encode()
    }

    /// The stats as an ordered structured-event object — attachable to a
    /// trace span or instant as-is.
    pub fn to_fields(&self) -> prolog_trace::fields::Obj {
        let us = |d: Duration| d.as_micros() as u64;
        prolog_trace::fields::Obj::new()
            .u64("jobs", self.jobs as u64)
            .u64("tasks", self.tasks as u64)
            .u64("planning_us", us(self.planning))
            .u64("reordering_us", us(self.reordering))
            .u64("emission_us", us(self.emission))
            .u64("total_us", us(self.total))
            .u64("orders_explored", self.orders_explored as u64)
            .u64("orders_rejected", self.orders_rejected as u64)
            .u64("estimate_hits", self.estimate_hits)
            .u64("estimate_misses", self.estimate_misses)
            .u64("chain_hits", self.chain_hits)
            .u64("chain_misses", self.chain_misses)
            .u64("mode_hits", self.mode_hits)
            .u64("mode_misses", self.mode_misses)
    }

    /// Accumulates another run's stats into this one: durations and
    /// counters add, `jobs` keeps the most recent nonzero setting. The
    /// server aggregates every pipeline run through this to serve its
    /// `stats` reply.
    pub fn merge(&mut self, other: &RunStats) {
        if other.jobs != 0 {
            self.jobs = other.jobs;
        }
        self.tasks += other.tasks;
        self.planning += other.planning;
        self.reordering += other.reordering;
        self.emission += other.emission;
        self.total += other.total;
        self.orders_explored += other.orders_explored;
        self.orders_rejected += other.orders_rejected;
        self.estimate_hits += other.estimate_hits;
        self.estimate_misses += other.estimate_misses;
        self.chain_hits += other.chain_hits;
        self.chain_misses += other.chain_misses;
        self.mode_hits += other.mode_hits;
        self.mode_misses += other.mode_misses;
    }

    fn ratio(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Human-readable timing/counter block (the CLI's `--timings` output).
    pub fn render(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut out = String::new();
        out.push_str(&format!(
            "stage timings ({} jobs, {} reordering tasks):\n",
            self.jobs, self.tasks
        ));
        out.push_str(&format!("  planning    {:>9.3} ms\n", ms(self.planning)));
        out.push_str(&format!("  reordering  {:>9.3} ms\n", ms(self.reordering)));
        out.push_str(&format!("  emission    {:>9.3} ms\n", ms(self.emission)));
        out.push_str(&format!("  total       {:>9.3} ms\n", ms(self.total)));
        out.push_str(&format!(
            "search: {} orders examined, {} placements rejected by legality\n",
            self.orders_explored, self.orders_rejected
        ));
        out.push_str(&format!(
            "caches: estimates {}/{} hit ({:.0}%), chain costs {}/{} hit ({:.0}%), \
             mode patterns {}/{} hit ({:.0}%)\n",
            self.estimate_hits,
            self.estimate_hits + self.estimate_misses,
            100.0 * Self::ratio(self.estimate_hits, self.estimate_misses),
            self.chain_hits,
            self.chain_hits + self.chain_misses,
            100.0 * Self::ratio(self.chain_hits, self.chain_misses),
            self.mode_hits,
            self.mode_hits + self.mode_misses,
            100.0 * Self::ratio(self.mode_hits, self.mode_misses),
        ));
        out
    }
}

impl ModeReport {
    /// Predicted cost improvement factor (>1 means the reordered version
    /// is predicted cheaper).
    pub fn predicted_speedup(&self) -> f64 {
        if self.reordered.cost <= 0.0 {
            1.0
        } else {
            self.original.cost / self.reordered.cost
        }
    }

    /// Did the reorderer change anything for this mode?
    pub fn changed(&self) -> bool {
        let identity_clauses = self
            .clause_order
            .iter()
            .copied()
            .eq(0..self.clause_order.len());
        let identity_goals = self
            .goal_orders
            .iter()
            .all(|o| o.iter().copied().eq(0..o.len()));
        !(identity_clauses && identity_goals)
    }
}

impl fmt::Display for ReorderReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pred in &self.predicates {
            match &pred.skipped {
                Some(reason) => writeln!(f, "{}: unchanged ({reason})", pred.pred)?,
                None => {
                    writeln!(f, "{}:", pred.pred)?;
                    for m in &pred.modes {
                        writeln!(
                            f,
                            "  mode {} -> {}  cost {:.2} -> {:.2}  (x{:.2}, {} orders examined)",
                            m.mode,
                            m.version,
                            m.original.cost,
                            m.reordered.cost,
                            m.predicted_speedup(),
                            m.explored,
                        )?;
                    }
                }
            }
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_changed() {
        let m = ModeReport {
            mode: Mode::parse("--").unwrap(),
            version: "p_uu".into(),
            original: GoalStats::new(0.5, 100.0),
            reordered: GoalStats::new(0.5, 25.0),
            clause_order: vec![0, 1],
            goal_orders: vec![vec![1, 0]],
            explored: 3,
            rejected: 0,
        };
        assert!((m.predicted_speedup() - 4.0).abs() < 1e-12);
        assert!(m.changed());
        let id = ModeReport {
            mode: Mode::parse("-").unwrap(),
            version: "q_u".into(),
            original: GoalStats::new(0.5, 10.0),
            reordered: GoalStats::new(0.5, 10.0),
            clause_order: vec![0, 1, 2],
            goal_orders: vec![vec![0, 1], vec![0]],
            explored: 1,
            rejected: 0,
        };
        assert!(!id.changed());
    }

    #[test]
    fn run_stats_render_covers_stages_and_counters() {
        let stats = RunStats {
            jobs: 4,
            tasks: 44,
            planning: Duration::from_millis(6),
            reordering: Duration::from_millis(15),
            emission: Duration::from_micros(130),
            total: Duration::from_millis(22),
            orders_explored: 70,
            orders_rejected: 9,
            estimate_hits: 126,
            estimate_misses: 55,
            chain_hits: 58,
            chain_misses: 66,
            mode_hits: 784,
            mode_misses: 54,
        };
        let text = stats.render();
        for needle in [
            "4 jobs",
            "44 reordering tasks",
            "planning",
            "reordering",
            "emission",
            "total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(text.contains("70 orders examined"));
        assert!(text.contains("9 placements rejected"));
        assert!(text.contains("estimates 126/181 hit (70%)"));
        // Empty counters must not divide by zero.
        assert!(RunStats::default().render().contains("0/0 hit (0%)"));
    }

    #[test]
    fn run_stats_json_is_flat_and_stable() {
        let stats = RunStats {
            jobs: 2,
            tasks: 7,
            planning: Duration::from_micros(1500),
            reordering: Duration::from_micros(2500),
            emission: Duration::from_micros(30),
            total: Duration::from_micros(4100),
            orders_explored: 11,
            orders_rejected: 3,
            estimate_hits: 5,
            estimate_misses: 4,
            chain_hits: 2,
            chain_misses: 1,
            mode_hits: 9,
            mode_misses: 8,
        };
        let json = stats.to_json();
        assert_eq!(
            json,
            "{\"jobs\":2,\"tasks\":7,\"planning_us\":1500,\"reordering_us\":2500,\
             \"emission_us\":30,\"total_us\":4100,\"orders_explored\":11,\
             \"orders_rejected\":3,\"estimate_hits\":5,\"estimate_misses\":4,\
             \"chain_hits\":2,\"chain_misses\":1,\"mode_hits\":9,\"mode_misses\":8}"
        );
    }

    #[test]
    fn run_stats_merge_accumulates() {
        let mut total = RunStats::default();
        let one = RunStats {
            jobs: 4,
            tasks: 3,
            planning: Duration::from_micros(10),
            total: Duration::from_micros(50),
            orders_explored: 6,
            estimate_hits: 2,
            ..Default::default()
        };
        total.merge(&one);
        total.merge(&one);
        assert_eq!(total.jobs, 4);
        assert_eq!(total.tasks, 6);
        assert_eq!(total.planning, Duration::from_micros(20));
        assert_eq!(total.total, Duration::from_micros(100));
        assert_eq!(total.orders_explored, 12);
        assert_eq!(total.estimate_hits, 4);
    }
}
