//! Cost and probability estimation (paper §VI-A.4, §VI-B).
//!
//! Every goal needs a [`GoalStats`]: its expected cost (in predicate
//! calls) and a success probability whose odds encode its expected number
//! of solutions. The estimator combines, in priority order:
//!
//! 1. `:- cost(p/n, Mode, Cost, Prob)` declarations (the paper's
//!    "probabilities and costs for recursive predicates");
//! 2. a hand-written table for built-ins;
//! 3. Warren-style domain estimation for fact predicates (§VI-A.4);
//! 4. bottom-up propagation through clause bodies with the Markov-chain
//!    model for rule predicates, with a bounded fixpoint for recursive
//!    ones (an extension — the paper requires declarations there).
//!
//! # Probability encoding
//!
//! The chain model's `p` plays two roles: chance of succeeding at least
//! once *and*, through the redo arc, the multiplicity of solutions
//! (`E = p/(1−p)` on the all-solutions chain). We therefore encode an
//! expected solution count `E` as `p = E/(1+E)`: a pure test with a 4%
//! match chance gets `p ≈ 0.04`, a generator with 34 tuples gets
//! `p ≈ 0.97` whose odds are exactly 34. This keeps the chain algebra
//! consistent: expected solutions of a conjunction multiply.

use crate::config::ReorderConfig;
use crate::oracle::ModeOracle;
use crate::scan;
use prolog_analysis::{
    AbstractState, Declarations, DomainEstimator, Mode, ModeItem, RecursionAnalysis, ShardedCache,
};
use prolog_markov::{ClauseChain, GoalStats};
use prolog_syntax::{Clause, PredId, SourceProgram, Term};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// Converts an expected solution count into the chain probability.
pub fn solutions_to_p(e: f64) -> f64 {
    let e = e.max(0.0);
    e / (1.0 + e)
}

/// The inverse: expected solutions encoded by a probability.
pub fn p_to_solutions(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0 - 1e-9);
    p / (1.0 - p)
}

/// Cache key of one conjunction-cost evaluation: the cost model plus the
/// (clamped) per-goal stats, bit-exact.
type ChainKey = (u8, Vec<(u64, u64)>);

/// One in-flight `stats` computation on the current thread. `seed` is the
/// current fixpoint assumption handed to recursive calls of `key`;
/// `tainted` is set when a recursion cut-off for a key below this frame
/// fires while it is open — the frame's result then depends on the
/// enclosing computation and must not be memoised (standalone calls
/// recompute the context-free value, keeping the shared cache
/// deterministic no matter which worker populates it first).
struct Frame {
    key: (PredId, Mode),
    tainted: bool,
    seed: Option<GoalStats>,
}

thread_local! {
    /// Per-thread stack of in-flight `(predicate, mode)` computations.
    /// Thread-local so the `Estimator` stays `Sync`: recursion state
    /// belongs to the worker walking the clause equations, while finished
    /// stats are shared through the sharded memo table.
    static IN_FLIGHT: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// Per-thread overflow memo used once the shared table is sealed.
    /// Cleared at every [`Estimator::begin_task`] so each reordering task
    /// only ever sees the sealed shared entries plus its own computations.
    static SCRATCH: RefCell<HashMap<(PredId, Mode), GoalStats>> =
        RefCell::new(HashMap::new());
}

/// Bottom-up cost/probability estimator. Shared by every reordering
/// worker: the memo tables are sharded and lock-striped, recursion state
/// is thread-local, so concurrent `stats` calls are both safe and cheap.
///
/// # Determinism under concurrency
///
/// Recursion cut-offs make a stats value computed *inside* another
/// pattern's evaluation differ from the standalone (memoised) value of
/// the same key, so a result can depend on which sibling patterns were
/// memoised first. The driver therefore warms the shared table in one
/// deterministic serial pass, [`Self::seal`]s it, and has every worker
/// call [`Self::begin_task`] at each task boundary: sealed, the shared
/// table is read-only and new stats land in a per-thread scratch, making
/// each task a pure function of the sealed entries and the installed
/// overrides. (The chain-cost table needs none of this — its values are
/// pure functions of the key.)
pub struct Estimator<'p> {
    program: &'p SourceProgram,
    pub oracle: &'p ModeOracle<'p>,
    declarations: &'p Declarations,
    recursion: &'p RecursionAnalysis,
    domains: DomainEstimator,
    config: &'p ReorderConfig,
    memo: ShardedCache<(PredId, Mode), GoalStats>,
    /// Stats of already-reordered versions, installed by the driver so
    /// callers see the improved numbers ("working upwards", §VI-B.2).
    /// Written only between parallel stages, read concurrently within
    /// them.
    overrides: RwLock<HashMap<(PredId, Mode), GoalStats>>,
    /// Memoised conjunction-cost evaluations, keyed by the scanned goals'
    /// stats: candidate orders across clauses (and A* prefix re-expansions)
    /// frequently rebuild identical chains.
    chain_costs: ShardedCache<ChainKey, f64>,
    /// Once set, `memo` is read-only; new stats go to the scratch.
    sealed: AtomicBool,
}

impl<'p> Estimator<'p> {
    pub fn new(
        program: &'p SourceProgram,
        oracle: &'p ModeOracle<'p>,
        declarations: &'p Declarations,
        recursion: &'p RecursionAnalysis,
        config: &'p ReorderConfig,
    ) -> Estimator<'p> {
        Estimator {
            program,
            oracle,
            declarations,
            recursion,
            domains: DomainEstimator::build(program),
            config,
            memo: ShardedCache::new(),
            overrides: RwLock::new(HashMap::new()),
            chain_costs: ShardedCache::new(),
            sealed: AtomicBool::new(false),
        }
    }

    /// Freezes the shared stats memo. Later stats are kept per thread
    /// (see [`Self::begin_task`]), so results stop depending on which
    /// worker computed what first.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// Starts a deterministic unit of work on this thread by clearing its
    /// scratch memo. Call at every task boundary once the table is sealed.
    pub fn begin_task(&self) {
        SCRATCH.with(|s| s.borrow_mut().clear());
    }

    /// Installs the stats of a reordered version so later (upward)
    /// estimates use them.
    pub fn install_override(&self, pred: PredId, mode: Mode, stats: GoalStats) {
        self.overrides
            .write()
            .expect("override table poisoned")
            .insert((pred, mode), stats);
    }

    /// Stats for calling `pred` in `mode`.
    pub fn stats(&self, pred: PredId, mode: &Mode) -> GoalStats {
        if let Some(s) = self
            .overrides
            .read()
            .expect("override table poisoned")
            .get(&(pred, mode.clone()))
        {
            return *s;
        }
        if let Some(c) = self.declarations.cost_of(pred, mode) {
            return GoalStats::new(c.probability, c.cost);
        }
        if prolog_engine::builtins::is_builtin(pred) && self.program.clauses_of(pred).is_empty() {
            return builtin_stats(pred, mode);
        }
        let key = (pred, mode.clone());
        if let Some(s) = self.memo.get(&key) {
            return s;
        }
        let sealed = self.sealed.load(Ordering::Acquire);
        if sealed {
            if let Some(s) = SCRATCH.with(|s| s.borrow().get(&key).copied()) {
                return s;
            }
        }
        // Recursion cut-off: the pattern is already open below on this
        // thread. Answer with its current fixpoint seed, and taint every
        // frame above the owner — their results depend on the seed, so
        // only the owning frame's (canonical) result may be memoised.
        let cut = IN_FLIGHT.with(|frames| {
            let mut frames = frames.borrow_mut();
            frames.iter().position(|f| f.key == key).map(|j| {
                let seed = frames[j].seed;
                for f in frames[j + 1..].iter_mut() {
                    f.tainted = true;
                }
                seed
            })
        });
        if let Some(seed) = cut {
            return seed.unwrap_or_else(|| self.default_recursive_stats());
        }
        let push = |seed: Option<GoalStats>| {
            IN_FLIGHT.with(|frames| {
                frames.borrow_mut().push(Frame {
                    key: key.clone(),
                    tainted: false,
                    seed,
                })
            })
        };
        let pop_pure = || {
            IN_FLIGHT
                .with(|frames| frames.borrow_mut().pop().map(|f| !f.tainted))
                .unwrap_or(false)
        };
        let (stats, pure) = if self.recursion.is_recursive(pred) {
            // Bounded fixpoint: start from the default assumption and
            // iterate the clause equations.
            let mut cur = self.default_recursive_stats();
            let mut pure = true;
            for _ in 0..self.config.recursive_fixpoint_iterations.max(1) {
                push(Some(cur));
                cur = self.compute_once(pred, mode);
                pure = pop_pure();
            }
            (cur, pure)
        } else {
            push(None);
            let s = self.compute_once(pred, mode);
            (s, pop_pure())
        };
        if pure {
            if sealed {
                SCRATCH.with(|s| s.borrow_mut().insert(key, stats));
            } else {
                self.memo.insert(key, stats);
            }
        }
        stats
    }

    /// Hit/miss counters of the two memo tables:
    /// `((estimate hits, misses), (chain-cost hits, misses))`.
    pub fn cache_counters(&self) -> ((u64, u64), (u64, u64)) {
        (
            (self.memo.hits(), self.memo.misses()),
            (self.chain_costs.hits(), self.chain_costs.misses()),
        )
    }

    fn default_recursive_stats(&self) -> GoalStats {
        GoalStats::new(
            solutions_to_p(self.config.default_recursive_solutions),
            self.config.default_recursive_cost,
        )
    }

    /// One evaluation of the predicate equations: cost = 1 (the call) plus
    /// each clause's head-match probability times its body's all-solutions
    /// cost; expected solutions sum across clauses.
    fn compute_once(&self, pred: PredId, mode: &Mode) -> GoalStats {
        let clauses = self.program.clauses_of(pred);
        if clauses.is_empty() {
            // Unknown predicate: one call, coin-flip success.
            return GoalStats::new(0.5, 1.0);
        }
        let mut cost = 1.0;
        let mut e_total = 0.0;
        for clause in clauses {
            let match_p = self.head_match_probability(pred, clause, mode);
            if match_p <= 0.0 {
                continue;
            }
            if clause.is_fact() {
                e_total += match_p;
                continue;
            }
            let mut state = scan::head_state(&clause.head, mode);
            match scan::scan_sequence(&clause.body.conjuncts(), &mut state, self) {
                Some(scanned) => {
                    if scanned.is_empty() {
                        e_total += match_p;
                        continue;
                    }
                    let stats: Vec<GoalStats> = scanned.iter().map(|g| g.stats).collect();
                    let chain = ClauseChain::new(&stats);
                    e_total += match_p * chain.expected_solutions().min(1.0e6);
                    cost += match_p * self.conjunction_cost(&chain);
                }
                None => {
                    // The clause is abstractly illegal in this mode: charge
                    // a nominal cost and assume it fails.
                    cost += match_p;
                }
            }
        }
        GoalStats::new(solutions_to_p(e_total), cost)
    }

    /// Probability that a call in `mode` unifies with this clause's head:
    /// the product over bound argument positions of the per-position match
    /// probability (declared `unify_prob`, else Warren's `1/|domain|` for
    /// constants, else a coin flip for structures).
    pub fn head_match_probability(&self, pred: PredId, clause: &Clause, mode: &Mode) -> f64 {
        let mut p = 1.0;
        for (i, (arg, item)) in clause.head.args().iter().zip(mode.items()).enumerate() {
            if *item != ModeItem::Plus {
                continue;
            }
            if let Some(&declared) = self.declarations.unify_probs.get(&(pred, i)) {
                p *= declared;
                continue;
            }
            match arg {
                Term::Var(_) => {}
                Term::Atom(_) | Term::Int(_) | Term::Float(_) => {
                    p /= self.domains.domain_size(pred, i) as f64;
                }
                Term::Struct(..) => p *= 0.5,
            }
        }
        p
    }

    /// The configured conjunction cost model.
    pub fn cost_model(&self) -> crate::config::CostModelKind {
        self.config.cost_model
    }

    /// All-solutions cost of a conjunction under the configured model,
    /// memoised on the goals' (clamped) stats — the same chains recur
    /// across candidate orders and clauses.
    pub fn conjunction_cost(&self, chain: &ClauseChain) -> f64 {
        let key: ChainKey = (
            self.config.cost_model as u8,
            chain
                .goals()
                .iter()
                .map(|g| (g.p.to_bits(), g.cost.to_bits()))
                .collect(),
        );
        if let Some(cost) = self.chain_costs.get(&key) {
            return cost;
        }
        let cost = match self.config.cost_model {
            crate::config::CostModelKind::MarkovChain => chain.all_solutions_cost_closed_form(),
            crate::config::CostModelKind::GeneratorTree => chain.generator_cost(),
        };
        self.chain_costs.insert(key, cost);
        cost
    }

    /// The domain estimator (shared with reports and tests).
    pub fn domains(&self) -> &DomainEstimator {
        &self.domains
    }

    pub fn program(&self) -> &'p SourceProgram {
        self.program
    }

    /// Entry state for a clause activated in `mode`.
    pub fn clause_entry_state(&self, clause: &Clause, mode: &Mode) -> AbstractState {
        scan::head_state(&clause.head, mode)
    }
}

/// Hand-written stats for built-ins (the paper's "probabilities and costs
/// for built-in predicates" fact file). Costs are 1 call; probabilities
/// encode expected solutions as odds.
pub fn builtin_stats(pred: PredId, mode: &Mode) -> GoalStats {
    let name = pred.name.as_str();
    let bound = |i: usize| mode.items().get(i) == Some(&ModeItem::Plus);
    let e: f64 = match (name, pred.arity) {
        ("true", 0) | ("!", 0) => 1.0,
        ("fail", 0) | ("false", 0) => 0.0,
        // Unification: both sides bound = a test that usually fails;
        // otherwise it binds and succeeds once.
        ("=", 2) => {
            if bound(0) && bound(1) {
                0.25
            } else {
                1.0
            }
        }
        ("\\=", 2) => 0.75,
        // Identity / order tests.
        ("==", 2) => 0.25,
        ("\\==", 2) => 0.75,
        ("@<", 2) | ("@>", 2) | ("@=<", 2) | ("@>=", 2) => 0.5,
        ("compare", 3) => 1.0,
        // Type tests: treated as coin flips absent better information.
        ("var", 1)
        | ("nonvar", 1)
        | ("atom", 1)
        | ("number", 1)
        | ("integer", 1)
        | ("float", 1)
        | ("atomic", 1)
        | ("compound", 1)
        | ("callable", 1)
        | ("is_list", 1)
        | ("ground", 1) => 0.5,
        // Arithmetic: `is` always delivers exactly one solution;
        // comparisons are tests.
        ("is", 2) => 1.0,
        ("=:=", 2) | ("=\\=", 2) | ("<", 2) | (">", 2) | ("=<", 2) | (">=", 2) => 0.5,
        // Term inspection is deterministic.
        ("functor", 3) | ("arg", 3) | ("=..", 2) | ("copy_term", 2) => 1.0,
        ("length", 2) | ("sort", 2) | ("msort", 2) => 1.0,
        // between with a free third argument generates; guess 10 values.
        ("between", 3) => {
            if bound(2) {
                0.5
            } else {
                10.0
            }
        }
        // Set predicates and I/O are deterministic single-solution.
        ("findall", 3) => 1.0,
        ("bagof", 3) | ("setof", 3) => 0.75,
        ("write", 1)
        | ("print", 1)
        | ("writeln", 1)
        | ("write_canonical", 1)
        | ("nl", 0)
        | ("tab", 1) => 1.0,
        ("call", 1) => 0.5,
        ("not", 1) | ("\\+", 1) => 0.5,
        ("forall", 2) => 0.5,
        _ => 0.5,
    };
    GoalStats::new(solutions_to_p(e), 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_encoding_round_trips() {
        for e in [0.0, 0.04, 0.5, 1.0, 6.0, 34.0] {
            let p = solutions_to_p(e);
            assert!((p_to_solutions(p) - e).abs() < 1e-9, "e = {e}");
        }
        assert_eq!(solutions_to_p(-3.0), 0.0);
    }

    #[test]
    fn builtin_stats_shapes() {
        let m2 = Mode::parse("++").unwrap();
        let is = builtin_stats(PredId::new("is", 2), &Mode::parse("-+").unwrap());
        assert_eq!(is.cost, 1.0);
        assert!((p_to_solutions(is.p) - 1.0).abs() < 1e-9);
        let eq = builtin_stats(PredId::new("=", 2), &m2);
        assert!(eq.p < is.p); // bound = bound is a test
        let gen = builtin_stats(PredId::new("between", 3), &Mode::parse("++-").unwrap());
        assert!(p_to_solutions(gen.p) > 1.0); // a generator
        let fail = builtin_stats(PredId::new("fail", 0), &Mode::parse("").unwrap());
        assert_eq!(fail.p, 0.0);
    }
}
