//! Mode specialisation and dispatcher generation (paper §III-B, §VII).
//!
//! "We provide a different version of each predicate for each mode … Note
//! the new names for the versions of predicates that are tuned to a
//! particular mode: the terminal letters are `u` for uninstantiated and
//! `i` for instantiated." Callers inside specialised clauses are renamed
//! to the version matching the callee's mode at that call site; a
//! dispatcher under the original name tests `var/1` on each argument and
//! routes to the right version ("the Prolog engine needs merely to test
//! two tag bits").

use prolog_analysis::{Mode, ModeItem};
use prolog_syntax::{sym, Body, Clause, PredId, Symbol, Term};
use std::collections::HashMap;

/// The specialised name for `pred` called in (collapsed) `mode`:
/// `name_suffix`, e.g. `aunt` + `(-,+)` → `aunt_ui`. Arity-0 predicates
/// have nothing to specialise on and keep their name.
pub fn version_name(pred: PredId, mode: &Mode) -> Symbol {
    if pred.arity == 0 {
        pred.name
    } else {
        sym(&format!("{}_{}", pred.name, mode.suffix()))
    }
}

/// Renames a clause head to its version name.
pub fn rename_head(clause: &Clause, version: Symbol) -> Clause {
    let head = match &clause.head {
        Term::Struct(_, args) => Term::Struct(version, args.clone()),
        Term::Atom(_) => Term::Atom(version),
        other => other.clone(),
    };
    Clause {
        head,
        body: clause.body.clone(),
        var_names: clause.var_names.clone(),
    }
}

/// Rewrites the plain calls of a body, goal by goal: `rename(goal_term)`
/// returns the replacement term (or the original). Goals inside control
/// constructs are *not* rewritten — they reach their callees through the
/// dispatchers instead.
pub fn rename_top_level_calls(body: &Body, rename: &mut impl FnMut(&Term) -> Term) -> Body {
    match body {
        Body::Call(t) => Body::Call(rename(t)),
        Body::And(a, b) => Body::And(
            Box::new(rename_top_level_calls(a, rename)),
            Box::new(rename_top_level_calls(b, rename)),
        ),
        other => other.clone(),
    }
}

/// Builds the dispatcher clause for `pred`: nested `var/1` if-then-elses
/// routing to per-suffix versions. `versions` maps a `u`/`i` suffix to the
/// version name serving it; missing suffixes (illegal modes) route to
/// `fail`. Subtrees whose versions all coincide are collapsed to a direct
/// call, which is why most dispatchers are short (§VII: "the reorderer
/// produces only one or two distinct versions").
pub fn dispatcher(pred: PredId, versions: &HashMap<String, Symbol>) -> Clause {
    let args: Vec<Term> = (0..pred.arity).map(Term::Var).collect();
    let head = Term::struct_(pred.name, args.clone());
    let body = dispatch_tree(&args, String::new(), versions);
    Clause {
        head,
        body,
        var_names: (0..pred.arity).map(|i| format!("A{}", i + 1)).collect(),
    }
}

/// Recursive dispatcher construction over argument positions.
fn dispatch_tree(args: &[Term], suffix: String, versions: &HashMap<String, Symbol>) -> Body {
    let depth = suffix.len();
    if depth == args.len() {
        return match versions.get(&suffix) {
            Some(name) => Body::Call(Term::struct_(*name, args.to_vec())),
            None => Body::Fail,
        };
    }
    // If every completion of this suffix routes to the same version, call
    // it directly without further tests.
    let completions: Vec<&Symbol> = versions
        .iter()
        .filter(|(k, _)| k.starts_with(&suffix))
        .map(|(_, v)| v)
        .collect();
    if let Some((first, rest)) = completions.split_first() {
        if rest.iter().all(|v| v == first)
            && versions.keys().filter(|k| k.starts_with(&suffix)).count()
                == 1 << (args.len() - depth)
        {
            return Body::Call(Term::struct_(**first, args.to_vec()));
        }
    }
    let test = Body::Call(Term::app("var", vec![args[depth].clone()]));
    let unbound = dispatch_tree(args, format!("{suffix}u"), versions);
    let bound = dispatch_tree(args, format!("{suffix}i"), versions);
    Body::IfThenElse(Box::new(test), Box::new(unbound), Box::new(bound))
}

/// Distinct versions to emit, plus the suffix → version-name table.
pub type VersionPlan = (Vec<(Symbol, Vec<Clause>)>, HashMap<String, Symbol>);

/// Deduplicates version bodies: modes whose reordered clauses are
/// identical share one version. Returns `(distinct versions to emit,
/// suffix → version name)`.
pub fn dedup_versions(pred: PredId, per_mode: Vec<(Mode, Vec<Clause>)>) -> VersionPlan {
    let mut emitted: Vec<(Symbol, Vec<Clause>)> = Vec::new();
    let mut by_shape: HashMap<String, Symbol> = HashMap::new();
    let mut suffix_map: HashMap<String, Symbol> = HashMap::new();
    for (mode, clauses) in per_mode {
        let shape = clauses
            .iter()
            .map(|c| format!("{:?}|{:?}", c.head.args(), c.body))
            .collect::<Vec<_>>()
            .join("\n");
        let suffix = mode.suffix();
        match by_shape.get(&shape) {
            Some(&existing) => {
                suffix_map.insert(suffix, existing);
            }
            None => {
                let name = version_name(pred, &mode);
                by_shape.insert(shape, name);
                suffix_map.insert(suffix, name);
                let renamed = clauses.iter().map(|c| rename_head(c, name)).collect();
                emitted.push((name, renamed));
            }
        }
    }
    (emitted, suffix_map)
}

/// Collapses a (possibly `?`-bearing) call mode to the `+`/`-` version
/// suffix mode it must be served by (`?` → `-`: the version must tolerate
/// an unbound argument).
pub fn collapse_for_version(mode: &Mode) -> Mode {
    Mode::new(
        mode.items()
            .iter()
            .map(|m| match m {
                ModeItem::Plus => ModeItem::Plus,
                _ => ModeItem::Minus,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;
    use prolog_syntax::pretty::clause_to_string;

    fn id(name: &str, arity: usize) -> PredId {
        PredId::new(name, arity)
    }

    #[test]
    fn version_names_follow_paper_convention() {
        assert_eq!(
            version_name(id("aunt", 2), &Mode::parse("--").unwrap()).as_str(),
            "aunt_uu"
        );
        assert_eq!(
            version_name(id("aunt", 2), &Mode::parse("-+").unwrap()).as_str(),
            "aunt_ui"
        );
        assert_eq!(
            version_name(id("aunt", 2), &Mode::parse("++").unwrap()).as_str(),
            "aunt_ii"
        );
        assert_eq!(
            version_name(id("main", 0), &Mode::parse("").unwrap()).as_str(),
            "main"
        );
    }

    #[test]
    fn rename_head_keeps_args_and_body() {
        let p = parse_program("aunt(X, Y) :- parent(X, Z), sister(Z, Y).").unwrap();
        let renamed = rename_head(&p.clauses[0], sym("aunt_uu"));
        assert_eq!(
            clause_to_string(&renamed),
            "aunt_uu(X, Y) :- parent(X, Z), sister(Z, Y)."
        );
    }

    /// Compares a dispatcher clause against expected source, structurally
    /// (the printer may drop redundant parentheses).
    fn assert_clause_eq(clause: &Clause, expected_src: &str) {
        let printed = clause_to_string(clause);
        let reparsed = parse_program(&printed).expect("dispatcher must re-parse");
        let expected = parse_program(expected_src).expect("expected source parses");
        assert_eq!(
            reparsed.clauses[0].body, expected.clauses[0].body,
            "printed as: {printed}"
        );
        assert_eq!(reparsed.clauses[0].head, expected.clauses[0].head);
    }

    #[test]
    fn full_dispatcher_shape_matches_paper() {
        // The aunt/2 dummy predicate of §VII.
        let mut versions = HashMap::new();
        versions.insert("uu".to_string(), sym("aunt_uu"));
        versions.insert("ui".to_string(), sym("aunt_ui"));
        versions.insert("iu".to_string(), sym("aunt_iu"));
        versions.insert("ii".to_string(), sym("aunt_ii"));
        let clause = dispatcher(id("aunt", 2), &versions);
        assert_clause_eq(
            &clause,
            "aunt(A1, A2) :- (var(A1) -> (var(A2) -> aunt_uu(A1, A2) ; aunt_ui(A1, A2)) ; (var(A2) -> aunt_iu(A1, A2) ; aunt_ii(A1, A2))).",
        );
    }

    #[test]
    fn dispatcher_collapses_shared_versions() {
        // Only one distinct version: no tests at all.
        let mut versions = HashMap::new();
        for s in ["uu", "ui", "iu", "ii"] {
            versions.insert(s.to_string(), sym("p_uu"));
        }
        let clause = dispatcher(id("p", 2), &versions);
        assert_clause_eq(&clause, "p(A1, A2) :- p_uu(A1, A2).");
        // Two versions split on the first argument only.
        let mut versions = HashMap::new();
        versions.insert("uu".to_string(), sym("p_uu"));
        versions.insert("ui".to_string(), sym("p_uu"));
        versions.insert("iu".to_string(), sym("p_ii"));
        versions.insert("ii".to_string(), sym("p_ii"));
        let clause = dispatcher(id("p", 2), &versions);
        assert_clause_eq(
            &clause,
            "p(A1, A2) :- (var(A1) -> p_uu(A1, A2) ; p_ii(A1, A2)).",
        );
    }

    #[test]
    fn missing_modes_route_to_fail() {
        let mut versions = HashMap::new();
        versions.insert("i".to_string(), sym("q_i"));
        let clause = dispatcher(id("q", 1), &versions);
        assert_clause_eq(&clause, "q(A1) :- (var(A1) -> fail ; q_i(A1)).");
    }

    #[test]
    fn dedup_merges_identical_versions() {
        let p = parse_program("p(X) :- q(X). p(X) :- r(X).").unwrap();
        let clauses = p.clauses.clone();
        let per_mode = vec![
            (Mode::parse("-").unwrap(), clauses.clone()),
            (Mode::parse("+").unwrap(), clauses),
        ];
        let (emitted, map) = dedup_versions(id("p", 1), per_mode);
        assert_eq!(emitted.len(), 1);
        assert_eq!(map["u"], map["i"]);
        assert_eq!(map["u"].as_str(), "p_u");
    }

    #[test]
    fn rename_top_level_only() {
        let p = parse_program("p(X) :- q(X), (r(X) ; s(X)).").unwrap();
        let body = rename_top_level_calls(&p.clauses[0].body, &mut |t| {
            if t.pred_id().unwrap().name.as_str() == "q" {
                Term::struct_(sym("q_u"), t.args().to_vec())
            } else {
                t.clone()
            }
        });
        let preds = body.called_preds();
        assert!(preds.iter().any(|p| p.name.as_str() == "q_u"));
        assert!(preds.iter().any(|p| p.name.as_str() == "r")); // untouched
    }
}
