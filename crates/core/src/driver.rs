//! The whole-program reordering driver (paper §VI-B.2, Fig. 3).
//!
//! "The reorderer loads the program and the extra facts. … Working
//! upwards, the reorderer handles every user predicate in the program,
//! changing goal names as necessary to correspond to the new predicate
//! names." Predicates are processed in bottom-up call-graph order; each
//! specialisable predicate gets one tuned version per legal `+`/`-` mode,
//! identical versions are merged, callers are renamed to the version
//! matching each call site's mode, and a `var/1` dispatcher is emitted
//! under the original name. Fixed, recursive, and fact predicates are
//! copied unchanged (with the reason recorded in the report).
//!
//! The run is staged for concurrency: **planning** (analyses, fixity, the
//! mode oracle, and a level schedule over the call graph) is computed
//! once and shared immutably; **reordering** dispatches one task per
//! `(predicate, mode)` over a scoped worker pool, level by level, with
//! version stats installed at each level boundary; **emission** then
//! assembles the program and report strictly in bottom-up order. Because
//! same-level predicates never call one another, the shared memo tables
//! are warmed serially and sealed before the workers start (recursion
//! cut-offs make lazily-cached estimates depend on computation order —
//! see [`crate::costs::Estimator`]), and anything not warmed is
//! recomputed per task, the output is byte-identical for any worker
//! count.

use crate::blocks::split_blocks;
use crate::clause_order::{clause_is_mobile, order_clauses};
use crate::config::ReorderConfig;
use crate::costs::{solutions_to_p, Estimator};
use crate::oracle::ModeOracle;
use crate::report::{ModeReport, PredicateReport, ReorderReport, RunStats};
use crate::scan::{self, ScannedGoal};
use crate::search;
use crate::specialize::{collapse_for_version, dedup_versions, dispatcher, rename_top_level_calls};
use prolog_analysis::fixity::{prolog_engine_builtin_seeds, FixityAnalysis};
use prolog_analysis::{CallGraph, Mode, ProgramAnalysis, SemifixityAnalysis};
use prolog_markov::{ClauseChain, GoalStats};
use prolog_syntax::{Body, Clause, PredId, SourceProgram, Symbol, Term};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The reordering system.
pub struct Reorderer<'p> {
    program: &'p SourceProgram,
    config: ReorderConfig,
    /// Empirically measured per-mode costs (see [`crate::empirical`]),
    /// installed as estimator overrides before reordering.
    measured: crate::empirical::MeasuredCosts,
}

/// Output of a run: the transformed program plus the decision report.
#[derive(Debug)]
pub struct ReorderResult {
    pub program: SourceProgram,
    pub report: ReorderReport,
}

impl<'p> Reorderer<'p> {
    pub fn new(program: &'p SourceProgram, config: ReorderConfig) -> Reorderer<'p> {
        Reorderer {
            program,
            config,
            measured: Default::default(),
        }
    }

    /// Supplies measured costs from a calibration pass (the paper's
    /// "extended Warren's method", §I-E): they replace the static
    /// estimates for the measured predicates and modes.
    pub fn with_measured_costs(
        mut self,
        measured: crate::empirical::MeasuredCosts,
    ) -> Reorderer<'p> {
        self.measured = measured;
        self
    }

    /// Runs analysis, estimation, reordering, and specialisation.
    pub fn run(&self) -> ReorderResult {
        let t_run = Instant::now();
        let _run_span = prolog_trace::span_with("reorder.run", || {
            prolog_trace::fields::Obj::new()
                .u64("clauses", self.program.clauses.len() as u64)
                .u64("jobs", self.config.resolved_jobs() as u64)
        });

        // ---- Planning: analyses, fixity, the mode oracle, and the level
        // schedule. Everything built here is shared immutably (or behind
        // internal locks) by the reordering workers.
        let planning_span = prolog_trace::span("reorder.planning");
        let analysis = ProgramAnalysis::analyze(self.program);
        let mut seeds = prolog_engine_builtin_seeds();
        seeds.extend(analysis.declarations.fixed.iter().copied());
        let fixity = FixityAnalysis::compute_with_seeds(self.program, &analysis.callgraph, &seeds);
        let oracle = ModeOracle::new(self.program, &analysis.declarations);
        let est = Estimator::new(
            self.program,
            &oracle,
            &analysis.declarations,
            &analysis.recursion,
            &self.config,
        );
        for ((pred, mode), stats) in &self.measured {
            est.install_override(*pred, mode.clone(), *stats);
        }
        let is_recursive = |p: PredId| {
            analysis.recursion.is_recursive(p) || analysis.declarations.recursive.contains(&p)
        };

        // Which predicates get per-mode versions?
        let defined: Vec<PredId> = self.program.predicates();
        let mut specializable: HashSet<PredId> = HashSet::new();
        for &pred in &defined {
            let clauses = self.program.clauses_of(pred);
            let has_rule = clauses.iter().any(|c| !c.is_fact());
            if self.config.specialize_modes
                && has_rule
                && pred.arity >= 1
                && pred.arity <= 6
                && !self.config.pinned.contains(&pred)
                && !fixity.is_fixed(pred)
                && !is_recursive(pred)
                && !oracle.legal_plus_minus_modes(pred).is_empty()
            {
                specializable.insert(pred);
            }
        }

        // Fix each predicate's legal-mode list once so the task list, the
        // level boundaries, and the reports all agree on task identity
        // and order.
        let mode_lists: HashMap<PredId, Vec<Mode>> = specializable
            .iter()
            .map(|&p| (p, oracle.legal_plus_minus_modes(p)))
            .collect();
        let order = analysis.callgraph.bottom_up_order();
        let levels = schedule_levels(&analysis.callgraph, &order, &specializable);
        let jobs = self.config.resolved_jobs();

        // Warm the shared memo tables in one deterministic serial sweep,
        // then seal them. Recursion cut-offs make lazily-computed stats
        // and mode summaries depend on which sibling patterns were
        // memoised first — harmless in a fixed serial order, racy once
        // workers share the tables. Sealed, workers read the warmed
        // entries and keep anything new in per-task thread-local scratch,
        // so every task is a pure function of the plan and the overrides
        // installed at level boundaries.
        for &pred in &order {
            if !defined.contains(&pred) {
                continue;
            }
            for mode in oracle.legal_plus_minus_modes(pred) {
                est.stats(pred, &mode);
            }
        }
        est.seal();
        oracle.seal();
        let planning = t_run.elapsed();
        drop(planning_span);

        // ---- Reordering: one task per (predicate, mode), level by level.
        // Same-level predicates never call one another, so workers may
        // compute them in any order; results are collected by position and
        // each level boundary replays the serial sweep's bookkeeping
        // (override installs, version naming) in bottom-up order.
        let t_reorder = Instant::now();
        let reordering_span = prolog_trace::span_with("reorder.reordering", || {
            prolog_trace::fields::Obj::new().u64("levels", levels.len() as u64)
        });
        // (callee, suffix) → emitted version name, filled level by level.
        let mut version_names: HashMap<(PredId, String), Symbol> = HashMap::new();
        let mut artifacts: HashMap<PredId, PredArtifact> = HashMap::new();
        let mut task_count = 0usize;
        for level in &levels {
            let tasks: Vec<(PredId, &Mode)> = level
                .iter()
                .flat_map(|&pred| mode_lists[&pred].iter().map(move |m| (pred, m)))
                .collect();
            task_count += tasks.len();
            let outcomes = run_tasks(jobs, tasks.len(), |i| {
                est.begin_task();
                oracle.begin_task();
                let (pred, mode) = tasks[i];
                let _task_span = prolog_trace::span_with("reorder.task", || {
                    prolog_trace::fields::Obj::new()
                        .str("pred", format!("{pred}"))
                        .str("mode", mode.suffix())
                });
                let clauses = self.program.clauses_of(pred);
                let original = est.stats(pred, mode);
                let outcome = self.reorder_mode(
                    pred,
                    &clauses,
                    mode,
                    &fixity,
                    &analysis.semifixity,
                    &est,
                    &oracle,
                    &specializable,
                    &version_names,
                );
                (original, outcome)
            });

            let mut next = outcomes.into_iter();
            for &pred in level {
                let mut per_mode: Vec<(Mode, Vec<Clause>)> = Vec::new();
                let mut mode_infos: Vec<ModeInfo> = Vec::new();
                for mode in &mode_lists[&pred] {
                    let (original, outcome) =
                        next.next().expect("one outcome per (predicate, mode) task");
                    // Calibrated measurements are ground truth: a pair the
                    // caller measured keeps its measured stats, and only
                    // unmeasured pairs pick up the model's estimate of the
                    // reordered version.
                    if !self.measured.contains_key(&(pred, mode.clone())) {
                        est.install_override(pred, mode.clone(), outcome.stats);
                    }
                    per_mode.push((mode.clone(), outcome.clauses));
                    mode_infos.push((
                        mode.clone(),
                        original,
                        outcome.stats,
                        outcome.clause_order,
                        outcome.goal_orders,
                        outcome.explored,
                        outcome.rejected,
                    ));
                }

                let (versions, mut suffix_map) = dedup_versions(pred, per_mode);
                let single = versions.len() == 1;
                if single {
                    // Every legal mode produced identical code: keep the
                    // single version under the original name and skip the
                    // dispatcher entirely — the common case the paper notes
                    // ("the reorderer produces only one or two distinct
                    // versions").
                    for name in suffix_map.values_mut() {
                        *name = pred.name;
                    }
                }
                for (suffix, name) in &suffix_map {
                    version_names.insert((pred, suffix.clone()), *name);
                }
                let modes = mode_infos
                    .into_iter()
                    .map(
                        |(
                            mode,
                            original,
                            reordered,
                            clause_order,
                            goal_orders,
                            explored,
                            rejected,
                        )| {
                            let version = suffix_map
                                .get(&mode.suffix())
                                .map(|s| s.as_str().to_string())
                                .unwrap_or_else(|| mode.suffix());
                            ModeReport {
                                mode,
                                version,
                                original,
                                reordered,
                                clause_order,
                                goal_orders,
                                explored,
                                rejected,
                            }
                        },
                    )
                    .collect();
                artifacts.insert(
                    pred,
                    PredArtifact {
                        single,
                        versions,
                        suffix_map,
                        modes,
                    },
                );
            }
        }
        let reordering = t_reorder.elapsed();
        drop(reordering_span);

        // ---- Emission: assemble the program and report strictly in
        // bottom-up order, so the output is byte-identical no matter how
        // the reordering tasks were scheduled.
        let t_emit = Instant::now();
        let emission_span = prolog_trace::span("reorder.emission");
        let mut out = SourceProgram {
            directives: self.program.directives.clone(),
            ..Default::default()
        };
        let mut report = ReorderReport {
            warnings: analysis.declarations.warnings.clone(),
            ..Default::default()
        };
        for pred in order {
            if !defined.contains(&pred) {
                continue;
            }
            let clauses = self.program.clauses_of(pred);
            if !specializable.contains(&pred) {
                for c in &clauses {
                    out.clauses.push((*c).clone());
                }
                let reason = if self.config.pinned.contains(&pred) {
                    "pinned: calibration kept the original definition".to_string()
                } else if fixity.is_fixed(pred) {
                    "fixed: it (or a descendant) has side effects".to_string()
                } else if is_recursive(pred) {
                    "recursive: reordering needs declarations (§IV-D.7)".to_string()
                } else if clauses.iter().all(|c| c.is_fact()) {
                    "facts only".to_string()
                } else if pred.arity == 0 || pred.arity > 6 {
                    "arity outside specialisation range".to_string()
                } else if !self.config.specialize_modes {
                    "mode specialisation disabled".to_string()
                } else {
                    "no legal modes could be established".to_string()
                };
                report.predicates.push(PredicateReport {
                    pred,
                    skipped: Some(reason),
                    modes: Vec::new(),
                });
                continue;
            }

            let PredArtifact {
                single,
                versions,
                suffix_map,
                modes,
            } = artifacts
                .remove(&pred)
                .expect("artifact for every specialisable predicate");
            if single {
                let (_, version_clauses) = versions.into_iter().next().expect("one version");
                for clause in version_clauses {
                    out.clauses
                        .push(crate::specialize::rename_head(&clause, pred.name));
                }
            } else {
                for (_, version_clauses) in versions {
                    out.clauses.extend(version_clauses);
                }
                out.clauses.push(dispatcher(pred, &suffix_map));
            }
            report.predicates.push(PredicateReport {
                pred,
                skipped: None,
                modes,
            });
        }
        let emission = t_emit.elapsed();
        drop(emission_span);

        let ((estimate_hits, estimate_misses), (chain_hits, chain_misses)) = est.cache_counters();
        let (mode_hits, mode_misses) = oracle.cache_counters();
        report.stats = RunStats {
            jobs,
            tasks: task_count,
            planning,
            reordering,
            emission,
            total: t_run.elapsed(),
            orders_explored: report
                .predicates
                .iter()
                .flat_map(|p| &p.modes)
                .map(|m| m.explored)
                .sum(),
            orders_rejected: report
                .predicates
                .iter()
                .flat_map(|p| &p.modes)
                .map(|m| m.rejected)
                .sum(),
            estimate_hits,
            estimate_misses,
            chain_hits,
            chain_misses,
            mode_hits,
            mode_misses,
        };
        prolog_trace::instant_with("reorder.run_stats", || report.stats.to_fields());
        ReorderResult {
            program: out,
            report,
        }
    }

    #[allow(clippy::too_many_arguments)] // internal: the planning products travel together
    fn reorder_mode(
        &self,
        pred: PredId,
        clauses: &[&Clause],
        mode: &Mode,
        fixity: &FixityAnalysis,
        semifix: &SemifixityAnalysis,
        est: &Estimator<'_>,
        oracle: &ModeOracle<'_>,
        specializable: &HashSet<PredId>,
        version_names: &HashMap<(PredId, String), Symbol>,
    ) -> ModeOutcome {
        let mut new_clauses: Vec<Clause> = Vec::new();
        let mut clause_stats: Vec<(f64, f64)> = Vec::new();
        let mut goal_orders: Vec<Vec<usize>> = Vec::new();
        let mut e_total = 0.0;
        let mut total_cost = 1.0;
        let mut explored = 0;
        let mut rejected = 0;

        for clause in clauses {
            let match_p = est.head_match_probability(pred, clause, mode).min(1.0);
            if clause.is_fact() {
                new_clauses.push((*clause).clone());
                clause_stats.push((match_p, 1.0));
                goal_orders.push(Vec::new());
                e_total += match_p;
                continue;
            }
            let conjuncts = clause.body.conjuncts();
            let mut state = scan::head_state(&clause.head, mode);
            let blocks = split_blocks(&conjuncts, fixity);
            let mut assembled: Vec<ScannedGoal> = Vec::new();
            let mut order_map: Vec<usize> = Vec::new();
            let mut base = 0;
            let mut failed = false;
            for block in blocks {
                let k = block.goals.len();
                if block.mobile && self.config.reorder_goals && k > 1 {
                    match search::best_order(&block.goals, &state, est, semifix, &self.config) {
                        Some(out) => {
                            state = out.exit_state.clone();
                            explored += out.explored;
                            rejected += out.rejected;
                            order_map.extend(out.order.iter().map(|i| base + i));
                            assembled.extend(out.scanned);
                        }
                        None => {
                            failed = true;
                            break;
                        }
                    }
                } else {
                    let refs: Vec<&Body> = block.goals.iter().collect();
                    match scan::scan_sequence(&refs, &mut state, est) {
                        Some(sg) => {
                            order_map.extend(base..base + k);
                            assembled.extend(sg);
                        }
                        None => {
                            failed = true;
                            break;
                        }
                    }
                }
                base += k;
            }
            if failed {
                // This clause cannot be verified in this mode (it would be
                // abstractly illegal — typically the head never matches such
                // calls). Keep it verbatim; charge a nominal cost.
                rejected += 1;
                new_clauses.push((*clause).clone());
                clause_stats.push((match_p * 0.5, 1.0));
                goal_orders.push((0..conjuncts.len()).collect());
                total_cost += match_p;
                continue;
            }
            let stats_seq: Vec<GoalStats> = assembled.iter().map(|g| g.stats).collect();
            let chain = ClauseChain::new(&stats_seq);
            let e_clause = chain.expected_solutions().min(1.0e6);
            let cost_clause = est.conjunction_cost(&chain);
            let p_single = chain.success_probability();
            e_total += match_p * e_clause;
            total_cost += match_p * cost_clause;
            clause_stats.push((match_p * p_single, 1.0 + match_p * cost_clause));
            goal_orders.push(order_map);

            // Rebuild the body with callee renaming (top-level plain calls
            // only; control constructs reach callees via dispatchers).
            let per_goal: Vec<Body> = assembled
                .iter()
                .map(|sg| rename_scanned_goal(sg, oracle, specializable, version_names))
                .collect();
            new_clauses.push(Clause {
                head: clause.head.clone(),
                body: Body::conjoin(&per_goal),
                var_names: clause.var_names.clone(),
            });
        }

        let mobile: Vec<bool> = clauses
            .iter()
            .map(|c| clause_is_mobile(c, fixity))
            .collect();
        let clause_order = if self.config.reorder_clauses {
            order_clauses(&clause_stats, &mobile)
        } else {
            (0..clauses.len()).collect()
        };
        let ordered: Vec<Clause> = clause_order
            .iter()
            .map(|&i| new_clauses[i].clone())
            .collect();
        ModeOutcome {
            clauses: ordered,
            stats: GoalStats::new(solutions_to_p(e_total), total_cost),
            clause_order,
            goal_orders,
            explored,
            rejected,
        }
    }
}

struct ModeOutcome {
    clauses: Vec<Clause>,
    stats: GoalStats,
    clause_order: Vec<usize>,
    goal_orders: Vec<Vec<usize>>,
    explored: usize,
    rejected: usize,
}

/// `(mode, original, reordered, clause_order, goal_orders, explored,
/// rejected)` — a [`ModeReport`] before version names are known.
type ModeInfo = (
    Mode,
    GoalStats,
    GoalStats,
    Vec<usize>,
    Vec<Vec<usize>>,
    usize,
    usize,
);

/// Per-predicate product of the reordering stage, consumed by emission.
struct PredArtifact {
    /// All legal modes produced identical code: emit one version under the
    /// original name, no dispatcher.
    single: bool,
    versions: Vec<(Symbol, Vec<Clause>)>,
    suffix_map: HashMap<String, Symbol>,
    modes: Vec<ModeReport>,
}

/// Runs `count` independent tasks on up to `jobs` scoped workers and
/// collects the results in index order. `jobs <= 1` (or a single task)
/// runs inline with no thread machinery — the serial path. Results are
/// stored by task index, so the caller sees the same ordering no matter
/// which worker computed what.
fn run_tasks<T, F>(jobs: usize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = task(i);
                *slots[i].lock().expect("task slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("task slot poisoned")
                .expect("every task index claimed")
        })
        .collect()
}

/// Groups the specialisable predicates into call-graph *levels*: a
/// predicate's level is one more than its deepest callee's (SCC-mates
/// excluded). A call edge forces a level gap, so two predicates on the
/// same level cannot call one another — their `(predicate, mode)` tasks
/// are independent, and every estimate flowing between levels goes
/// through overrides installed at a lower level's boundary. Levels come
/// out ascending with each level's predicates in bottom-up order, which
/// makes the parallel schedule value-equivalent to the serial sweep.
fn schedule_levels(
    graph: &CallGraph,
    bottom_up: &[PredId],
    specializable: &HashSet<PredId>,
) -> Vec<Vec<PredId>> {
    let sccs = graph.sccs();
    let mut scc_of: HashMap<PredId, usize> = HashMap::new();
    for (i, component) in sccs.iter().enumerate() {
        for &p in component {
            scc_of.insert(p, i);
        }
    }
    // `sccs()` is reverse-topological (callee components first), so every
    // callee component's level is final before its callers are visited.
    let mut scc_level = vec![0usize; sccs.len()];
    for (i, component) in sccs.iter().enumerate() {
        let mut level = 0;
        for &p in component {
            for &callee in graph.callees(p) {
                if let Some(&j) = scc_of.get(&callee) {
                    if j != i {
                        level = level.max(scc_level[j] + 1);
                    }
                }
            }
        }
        scc_level[i] = level;
    }
    let mut by_level: BTreeMap<usize, Vec<PredId>> = BTreeMap::new();
    for &p in bottom_up {
        if specializable.contains(&p) {
            by_level.entry(scc_level[scc_of[&p]]).or_default().push(p);
        }
    }
    by_level.into_values().collect()
}

/// Renames one scanned goal's call to the specialised version matching its
/// call-site mode, when such a version exists.
fn rename_scanned_goal(
    sg: &ScannedGoal,
    oracle: &ModeOracle<'_>,
    specializable: &HashSet<PredId>,
    version_names: &HashMap<(PredId, String), Symbol>,
) -> Body {
    let (Body::Call(_), Some(call_mode)) = (&sg.goal, &sg.call_mode) else {
        return sg.goal.clone();
    };
    let call_mode = call_mode.clone();
    rename_top_level_calls(&sg.goal, &mut |t: &Term| {
        let Some(callee) = t.pred_id() else {
            return t.clone();
        };
        if !specializable.contains(&callee) {
            return t.clone();
        }
        let collapsed = collapse_for_version(&call_mode);
        if oracle.call(callee, &collapsed).is_none() {
            return t.clone();
        }
        match version_names.get(&(callee, collapsed.suffix())) {
            Some(&name) => Term::struct_(name, t.args().to_vec()),
            None => t.clone(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn run(src: &str) -> ReorderResult {
        let program = parse_program(src).unwrap();
        Reorderer::new(&program, ReorderConfig::default()).run()
    }

    const FAMILY: &str = "
        girl(g1). girl(g2). girl(g3).
        wife(h1, w1). wife(h2, w2). wife(h3, w3). wife(h4, w4).
        mother(c1, m1). mother(c2, m2). mother(c3, m3). mother(c4, m4).
        mother(c5, m1). mother(c6, m2). mother(c7, w1). mother(c8, w2).
        female(X) :- girl(X).
        female(X) :- wife(_, X).
        parent(C, P) :- mother(C, P).
        parent(C, P) :- mother(C, M), wife(P, M).
        grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
    ";

    #[test]
    fn produces_versions_and_dispatchers() {
        let result = run(FAMILY);
        let names: Vec<String> = result
            .program
            .predicates()
            .iter()
            .map(|p| format!("{p}"))
            .collect();
        // specialised versions exist
        assert!(names.iter().any(|n| n == "grandmother_uu/2"), "{names:?}");
        // the dispatcher keeps the original name
        assert!(names.iter().any(|n| n == "grandmother/2"));
        // fact predicates are copied verbatim
        assert!(names.iter().any(|n| n == "mother/2"));
    }

    #[test]
    fn grandmother_uu_runs_female_first() {
        let result = run(FAMILY);
        let gm_uu = result.program.clauses_of(PredId::new("grandmother_uu", 2));
        assert_eq!(gm_uu.len(), 1);
        let goals = gm_uu[0].body.conjuncts();
        let first = match goals[0] {
            Body::Call(t) => t.pred_id().unwrap().name.as_str().to_string(),
            other => panic!("expected call, got {other:?}"),
        };
        assert!(
            first.starts_with("female"),
            "female should lead in mode (-,-), got {first}"
        );
    }

    #[test]
    fn callees_are_renamed_to_resolvable_versions() {
        let result = run(FAMILY);
        let gm_uu = result.program.clauses_of(PredId::new("grandmother_uu", 2));
        let called: Vec<PredId> = gm_uu[0].body.called_preds();
        // every callee resolves inside the emitted program (version or
        // collapsed original — single-version predicates keep their name)
        for callee in &called {
            assert!(
                result.program.predicates().contains(callee),
                "unresolvable callee {callee}"
            );
        }
        // grandparent has several distinct versions, so the call to it
        // must be mode-specialised
        assert!(
            called
                .iter()
                .any(|p| p.name.as_str().starts_with("grandparent_")),
            "expected a specialised grandparent call: {called:?}"
        );
    }

    #[test]
    fn report_predicts_improvement_for_grandmother_uu() {
        let result = run(FAMILY);
        let pr = result
            .report
            .predicate(PredId::new("grandmother", 2))
            .unwrap();
        assert!(pr.skipped.is_none());
        let uu = pr
            .modes
            .iter()
            .find(|m| m.mode == Mode::parse("--").unwrap())
            .unwrap();
        assert!(
            uu.predicted_speedup() >= 1.0,
            "speedup {}",
            uu.predicted_speedup()
        );
    }

    #[test]
    fn recursive_predicates_are_skipped_with_reason() {
        let result = run("app([], X, X). app([H|T], Y, [H|Z]) :- app(T, Y, Z).
                          use_(A, B) :- app(A, A, B).");
        let pr = result.report.predicate(PredId::new("app", 3)).unwrap();
        assert!(pr.skipped.as_deref().unwrap().contains("recursive"));
        // clauses preserved verbatim
        assert_eq!(result.program.clauses_of(PredId::new("app", 3)).len(), 2);
    }

    #[test]
    fn fixed_predicates_are_skipped_with_reason() {
        let result = run("log(X) :- write(X), nl. top(X) :- gen(X), log(X). gen(1).");
        let pr = result.report.predicate(PredId::new("log", 1)).unwrap();
        assert!(pr.skipped.as_deref().unwrap().contains("side effects"));
        let pr = result.report.predicate(PredId::new("top", 1)).unwrap();
        assert!(pr.skipped.is_some()); // contaminated ancestor
    }

    #[test]
    fn reordered_program_parses_and_prints() {
        let result = run(FAMILY);
        let text = prolog_syntax::pretty::program_to_string(&result.program);
        let reparsed = parse_program(&text).expect("emitted program must re-parse");
        assert_eq!(reparsed.clauses.len(), result.program.clauses.len());
    }

    #[test]
    fn specialisation_can_be_disabled() {
        let program = parse_program(FAMILY).unwrap();
        let config = ReorderConfig {
            specialize_modes: false,
            ..Default::default()
        };
        let result = Reorderer::new(&program, config).run();
        assert!(result
            .program
            .predicates()
            .iter()
            .all(|p| !p.name.as_str().contains("_u") && !p.name.as_str().contains("_i")));
    }
}
