//! Warren's query-reordering baseline (paper §I-E; Warren 1981 [25]).
//!
//! "Warren gave each goal of each predicate a number: the factor by which
//! the goal multiplies the number of alternatives the system must
//! consider. … he divided the number of tuples of (answers to) a
//! predicate by the product of the sizes of the domains of each
//! instantiated position in the calling mode." Goals of a conjunctive
//! query are ordered greedily by increasing Warren number, updating the
//! bound-variable set as each goal is placed. Warren applied this to
//! *top-level queries only* — the limitation the paper's system removes —
//! so this module is the baseline the benchmark harness compares the full
//! reorderer against.

use prolog_analysis::DomainEstimator;
use prolog_syntax::{Body, SourceProgram, Term};
use std::collections::HashSet;

/// Warren's number for one goal given the currently-bound variables:
/// `tuples / Π |domain_i|` over instantiated argument positions.
/// Ground argument positions count as instantiated; positions holding
/// variables count only if the variable is in `bound`.
///
/// A zero fact count covers two opposite situations and they must not
/// share a number. A predicate with **no clauses at all** is known
/// empty: the call fails immediately, the cheapest goal there is — it
/// gets `0.0` and schedules first, pruning the conjunction before any
/// generator runs. A predicate **defined only by rules** gives the
/// fact-based estimator no information — it gets `f64::INFINITY` and
/// schedules last (as do non-callable goals).
pub fn warren_number(domains: &DomainEstimator, goal: &Term, bound: &HashSet<usize>) -> f64 {
    let Some(pred) = goal.pred_id() else {
        return f64::INFINITY;
    };
    let tuples = domains.fact_count(pred);
    if tuples == 0 {
        return if domains.is_defined(pred) {
            f64::INFINITY // rule-defined: no information
        } else {
            0.0 // known empty: fails immediately, schedule first
        };
    }
    let mut number = tuples as f64;
    for (i, arg) in goal.args().iter().enumerate() {
        let instantiated = match arg {
            Term::Var(v) => bound.contains(v),
            _ => true,
        };
        if instantiated {
            number /= domains.domain_size(pred, i) as f64;
        }
    }
    number
}

/// Greedy Warren ordering of a conjunction of plain goals: repeatedly
/// place the goal with the smallest current number, then mark its
/// variables bound. Returns the permutation (original indices in
/// execution order).
pub fn warren_order(
    domains: &DomainEstimator,
    goals: &[Term],
    initially_bound: &HashSet<usize>,
) -> Vec<usize> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<usize> = (0..goals.len()).collect();
    let mut order = Vec::with_capacity(goals.len());
    while !remaining.is_empty() {
        let (pos, &idx) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let na = warren_number(domains, &goals[a], &bound);
                let nb = warren_number(domains, &goals[b], &bound);
                na.partial_cmp(&nb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("remaining is non-empty");
        order.push(idx);
        remaining.remove(pos);
        for v in goals[idx].variables() {
            bound.insert(v);
        }
    }
    order
}

/// Reorders a top-level conjunctive query (plain goals only — Warren's
/// queries "perform no inference"). Control constructs make the query
/// ineligible and it is returned unchanged.
pub fn reorder_query(program: &SourceProgram, query: &Body) -> Body {
    let domains = DomainEstimator::build(program);
    let goals = query.conjuncts();
    let terms: Option<Vec<Term>> = goals
        .iter()
        .map(|g| match g {
            Body::Call(t) => Some(t.clone()),
            _ => None,
        })
        .collect();
    let Some(terms) = terms else {
        return query.clone();
    };
    let order = warren_order(&domains, &terms, &HashSet::new());
    let reordered: Vec<Body> = order.iter().map(|&i| goals[i].clone()).collect();
    Body::conjoin(&reordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::{parse_program, parse_term};

    /// A miniature of the paper's borders/2 arithmetic: with t tuples and
    /// domain sizes d, the numbers scale as t, t/d, t/d².
    #[test]
    fn warren_numbers_match_the_paper_formula() {
        // 9 border pairs over 3 countries: 9 / 3 / 1.
        let p = parse_program(
            "borders(a, b). borders(a, c). borders(b, a). borders(b, c).
             borders(c, a). borders(c, b). borders(a, a). borders(b, b).
             borders(c, c).",
        )
        .unwrap();
        let domains = DomainEstimator::build(&p);
        let goal = parse_term("borders(X, Y)").unwrap().0;
        let none = HashSet::new();
        assert_eq!(warren_number(&domains, &goal, &none), 9.0);
        let x_bound: HashSet<usize> = [0].into_iter().collect();
        assert_eq!(warren_number(&domains, &goal, &x_bound), 3.0);
        let both: HashSet<usize> = [0, 1].into_iter().collect();
        assert_eq!(warren_number(&domains, &goal, &both), 1.0);
    }

    #[test]
    fn ground_arguments_count_as_instantiated() {
        let p = parse_program("capital(fr, paris). capital(de, berlin).").unwrap();
        let domains = DomainEstimator::build(&p);
        let goal = parse_term("capital(fr, C)").unwrap().0;
        assert_eq!(warren_number(&domains, &goal, &HashSet::new()), 1.0);
    }

    #[test]
    fn greedy_order_prefers_selective_goals_first() {
        let p = parse_program(
            "big(a1, 1). big(a2, 2). big(a3, 3). big(a4, 4). big(a5, 5).
             big(a6, 6). big(a7, 7). big(a8, 8).
             small(a1). small(a2).",
        )
        .unwrap();
        let domains = DomainEstimator::build(&p);
        // query: big(X, N), small(X) — Warren puts small/1 first (2 < 8).
        let goals = vec![
            parse_term("big(X, N)").unwrap().0,
            parse_term("small(X)").unwrap().0,
        ];
        // note: both parse separately so vars collide; rebuild properly:
        let (q, _) = parse_term("(big(X, N), small(X))").unwrap();
        let body = Body::from_term(&q);
        let terms: Vec<Term> = body
            .conjuncts()
            .iter()
            .map(|g| match g {
                Body::Call(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        let order = warren_order(&domains, &terms, &HashSet::new());
        assert_eq!(order, vec![1, 0]);
        let _ = goals;
    }

    #[test]
    fn placed_goals_bind_their_variables() {
        let p = parse_program(
            "r(a, b). r(b, c). r(c, d). r(d, e).
             s(a, x). s(b, x). s(c, x). s(d, x). s(e, x). s(f, x). s(g, x). s(h, x).",
        )
        .unwrap();
        let domains = DomainEstimator::build(&p);
        let (q, _) = parse_term("(s(X, Y), r(X, Z))").unwrap();
        let body = Body::from_term(&q);
        let terms: Vec<Term> = body
            .conjuncts()
            .iter()
            .map(|g| match g {
                Body::Call(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        // r has 4 tuples < s's 8, so r goes first; after r binds X, s's
        // number falls from 8 to 1.
        let order = warren_order(&domains, &terms, &HashSet::new());
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn empty_relations_schedule_first_not_last() {
        // `absent/1` has no clauses: it is known empty, so Warren's
        // greedy order must place it before the generator — the whole
        // conjunction fails in one call instead of once per tuple.
        // (Before the fix, tuples == 0 returned INFINITY, conflating
        // "known empty" with "rule-defined, no information" and
        // scheduling the guaranteed-failing goal dead last.)
        let p = parse_program("gen(a1). gen(a2). gen(a3). gen(a4).").unwrap();
        let domains = DomainEstimator::build(&p);
        let (q, _) = parse_term("(gen(X), absent(X))").unwrap();
        let terms: Vec<Term> = Body::from_term(&q)
            .conjuncts()
            .iter()
            .map(|g| match g {
                Body::Call(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            warren_number(&domains, &terms[1], &HashSet::new()),
            0.0,
            "no clauses at all means known empty"
        );
        let order = warren_order(&domains, &terms, &HashSet::new());
        assert_eq!(order, vec![1, 0], "the empty relation goes first");
    }

    #[test]
    fn rule_defined_predicates_still_schedule_last() {
        // `derived/1` has a rule but no facts: the estimator has no
        // information, which is not the same as knowing it is empty.
        let p = parse_program("gen(a1). gen(a2). derived(X) :- gen(X).").unwrap();
        let domains = DomainEstimator::build(&p);
        let (q, _) = parse_term("(derived(X), gen(X))").unwrap();
        let terms: Vec<Term> = Body::from_term(&q)
            .conjuncts()
            .iter()
            .map(|g| match g {
                Body::Call(t) => t.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            warren_number(&domains, &terms[0], &HashSet::new()),
            f64::INFINITY
        );
        let order = warren_order(&domains, &terms, &HashSet::new());
        assert_eq!(order, vec![1, 0], "the fact-backed generator goes first");
    }

    #[test]
    fn reorder_query_preserves_semantics() {
        use prolog_engine::Engine;
        let src = "
            borders(fr, de). borders(de, pl). borders(fr, es). borders(es, pt).
            capital(fr, paris). capital(de, berlin). capital(pl, warsaw).
            capital(es, madrid). capital(pt, lisbon).
        ";
        let p = parse_program(src).unwrap();
        let (q, _) = parse_term("(borders(X, Y), capital(Y, paris))").unwrap();
        let body = Body::from_term(&q);
        let reordered = reorder_query(&p, &body);
        let mut e = Engine::new();
        e.consult(src).unwrap();
        let names = vec!["X".to_string(), "Y".to_string()];
        let a = e.query_term(&body.to_term(), &names, usize::MAX).unwrap();
        let b = e
            .query_term(&reordered.to_term(), &names, usize::MAX)
            .unwrap();
        assert_eq!(a.solution_set(), b.solution_set());
    }

    #[test]
    fn control_constructs_are_left_alone() {
        let p = parse_program("f(a).").unwrap();
        let (q, _) = parse_term("(f(X) ; f(Y))").unwrap();
        let body = Body::from_term(&q);
        assert_eq!(reorder_query(&p, &body), body);
    }
}
