//! Goal unfolding (paper §VIII, future work; Tamaki & Sato [24]).
//!
//! "Unfolding of goals (replacing them with the goals of the clauses of
//! the predicates they call) might greatly increase the possibilities for
//! reordering, especially when clauses of a program are short." This
//! module implements the safe core of that extension: a goal calling a
//! **non-recursive, single-clause, cut-free, side-effect-free** predicate
//! is replaced by that clause's body, with the head unification performed
//! symbolically at transformation time. Unfolded bodies merge into the
//! caller's conjunction, where the regular reorderer then has longer
//! mobile blocks to work with.

use prolog_analysis::fixity::FixityAnalysis;
use prolog_analysis::{CallGraph, RecursionAnalysis};
use prolog_engine::store::Store;
use prolog_engine::unify::unify;
use prolog_syntax::{Body, Clause, PredId, SourceProgram, Term};

/// Options for the unfolding pass.
#[derive(Debug, Clone)]
pub struct UnfoldConfig {
    /// Unfold repeatedly until fixpoint or this many sweeps.
    pub max_rounds: usize,
    /// Do not let a clause body grow beyond this many top-level goals.
    pub max_body_goals: usize,
}

impl Default for UnfoldConfig {
    fn default() -> Self {
        UnfoldConfig {
            max_rounds: 3,
            max_body_goals: 12,
        }
    }
}

/// Applies the unfolding transformation, returning the new program and
/// the number of goals unfolded.
pub fn unfold_program(program: &SourceProgram, config: &UnfoldConfig) -> (SourceProgram, usize) {
    let graph = CallGraph::build(program);
    let recursion = RecursionAnalysis::compute(&graph);
    let fixity = FixityAnalysis::compute(program, &graph);

    // Which predicates may be unfolded into their callers?
    let unfoldable = |pred: PredId| -> Option<&Clause> {
        let clauses = program.clauses_of(pred);
        if clauses.len() != 1 {
            return None;
        }
        let clause = clauses[0];
        if recursion.is_recursive(pred)
            || fixity.is_fixed(pred)
            || clause.body.contains_cut()
            || clause.is_fact()
        {
            return None;
        }
        // Control constructs splice awkwardly; keep to plain conjunctions.
        if clause
            .body
            .conjuncts()
            .iter()
            .any(|g| !matches!(g, Body::Call(_) | Body::True))
        {
            return None;
        }
        Some(clause)
    };

    let mut current = program.clone();
    let mut unfolded_total = 0;
    for _ in 0..config.max_rounds {
        let mut changed = false;
        let mut next = SourceProgram {
            directives: current.directives.clone(),
            clauses: Vec::with_capacity(current.clauses.len()),
        };
        for clause in &current.clauses {
            let goals = clause.body.conjuncts();
            let mut new_goals: Vec<Body> = Vec::new();
            let mut clause_vars = clause.num_vars();
            let mut did = false;
            for goal in goals {
                let unfold_target = match goal {
                    Body::Call(t) => t.pred_id().filter(|id| *id != clause.pred_id()),
                    _ => None,
                };
                let callee_clause = unfold_target.and_then(&unfoldable);
                let Some(callee_clause) = callee_clause else {
                    new_goals.push((*goal).clone());
                    continue;
                };
                let Body::Call(goal_term) = goal else {
                    unreachable!()
                };
                if new_goals.len() + callee_clause.body.conjuncts().len() > config.max_body_goals {
                    new_goals.push((*goal).clone());
                    continue;
                }
                match splice(goal_term, callee_clause, &mut clause_vars) {
                    Some(body_goals) => {
                        new_goals.extend(body_goals);
                        did = true;
                        unfolded_total += 1;
                    }
                    None => {
                        // Head does not unify with the goal: the goal can
                        // never succeed. Replace it with `fail`.
                        new_goals.push(Body::Fail);
                        did = true;
                    }
                }
            }
            changed |= did;
            let body = Body::conjoin(&new_goals);
            let mut var_names = clause.var_names.clone();
            while var_names.len() < clause_vars {
                var_names.push(format!("_U{}", var_names.len()));
            }
            next.clauses.push(Clause {
                head: clause.head.clone(),
                body,
                var_names,
            });
        }
        current = next;
        if !changed {
            break;
        }
    }
    (current, unfolded_total)
}

/// Unifies `goal_term` with the (renamed) head of `callee_clause` in a
/// scratch store and returns the callee body goals under the resulting
/// substitution, with callee-local variables rebased into the caller's
/// variable space. `None` if the head cannot match.
fn splice(goal_term: &Term, callee_clause: &Clause, clause_vars: &mut usize) -> Option<Vec<Body>> {
    let callee_base = *clause_vars;
    let callee_nvars = callee_clause.num_vars();
    let mut store = Store::new();
    store.alloc(callee_base + callee_nvars);
    let head = callee_clause.head.offset_vars(callee_base);
    if !unify(&mut store, goal_term, &head, false) {
        return None;
    }
    *clause_vars = callee_base + callee_nvars;
    let body = callee_clause
        .body
        .map_vars(&mut |v| Term::Var(v + callee_base));
    let resolved = resolve_body(&body, &store);
    Some(
        resolved
            .conjuncts()
            .into_iter()
            .filter(|g| !matches!(g, Body::True))
            .cloned()
            .collect(),
    )
}

/// Applies the store's bindings throughout a body.
fn resolve_body(body: &Body, store: &Store) -> Body {
    match body {
        Body::Call(t) => Body::Call(store.resolve(t)),
        Body::And(a, b) => Body::And(
            Box::new(resolve_body(a, store)),
            Box::new(resolve_body(b, store)),
        ),
        Body::Or(a, b) => Body::Or(
            Box::new(resolve_body(a, store)),
            Box::new(resolve_body(b, store)),
        ),
        Body::IfThenElse(c, t, e) => Body::IfThenElse(
            Box::new(resolve_body(c, store)),
            Box::new(resolve_body(t, store)),
            Box::new(resolve_body(e, store)),
        ),
        Body::Not(g) => Body::Not(Box::new(resolve_body(g, store))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;
    use prolog_syntax::parse_program;

    fn unfold(src: &str) -> (SourceProgram, usize) {
        unfold_program(&parse_program(src).unwrap(), &UnfoldConfig::default())
    }

    #[test]
    fn single_clause_predicates_are_spliced() {
        let (out, n) = unfold(
            "top(X, Y) :- link(X, Y).
             link(X, Y) :- edge(X, Z), edge(Z, Y).
             edge(a, b). edge(b, c).",
        );
        assert!(n >= 1);
        let top = out.clauses_of(prolog_syntax::PredId::new("top", 2));
        let goals = top[0].body.conjuncts();
        assert_eq!(
            goals.len(),
            2,
            "link expanded into two edge goals: {:?}",
            goals
        );
        // semantics preserved
        let mut a = Engine::new();
        a.consult(
            "top(X, Y) :- link(X, Y).
             link(X, Y) :- edge(X, Z), edge(Z, Y).
             edge(a, b). edge(b, c).",
        )
        .unwrap();
        let mut b = Engine::new();
        b.load(&out);
        assert_eq!(
            a.query("top(X, Y)").unwrap().solution_set(),
            b.query("top(X, Y)").unwrap().solution_set()
        );
    }

    #[test]
    fn head_structure_binds_into_the_caller() {
        let (out, n) = unfold(
            "get(P, N) :- name_of(P, N).
             name_of(person(N, _), N).",
        );
        // name_of is a fact (body true): not unfolded by the fact rule —
        // facts stay (they carry the head unification themselves).
        assert_eq!(n, 0);
        let _ = out;
    }

    #[test]
    fn recursive_and_multi_clause_callees_stay() {
        let (out, n) = unfold(
            "top(X) :- walk(X).
             walk(X) :- step(X).
             walk(X) :- step(X), walk(X).
             step(1).",
        );
        assert_eq!(n, 0);
        assert_eq!(
            out.clauses_of(prolog_syntax::PredId::new("walk", 1)).len(),
            2
        );
    }

    #[test]
    fn side_effecting_callees_stay() {
        let (_, n) = unfold(
            "top(X) :- log(X).
             log(X) :- write(X), nl_(X).
             nl_(_).",
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn never_matching_goal_becomes_fail() {
        let (out, _) = unfold(
            "top(Y) :- wants(apple, Y).
             wants(orange, Z) :- has(Z).
             has(1).",
        );
        let top = out.clauses_of(prolog_syntax::PredId::new("top", 1));
        assert!(matches!(top[0].body.conjuncts()[0], Body::Fail));
        let mut e = Engine::new();
        e.load(&out);
        assert!(!e.query("top(Y)").unwrap().succeeded());
    }

    #[test]
    fn unfold_then_reorder_end_to_end() {
        let src = "
            report(X) :- slow_pair(X), cheap(X).
            slow_pair(X) :- gen(X, Y), gen(Y, _).
            cheap(a).
            gen(a, b). gen(b, c). gen(c, d). gen(d, e). gen(e, a).
        ";
        let program = parse_program(src).unwrap();
        let (unfolded, n) = unfold_program(&program, &UnfoldConfig::default());
        assert!(n >= 1);
        let result = crate::Reorderer::new(&unfolded, crate::ReorderConfig::default()).run();
        let mut orig = Engine::new();
        orig.load(&program);
        let mut re = Engine::new();
        re.load(&result.program);
        assert_eq!(
            orig.query("report(X)").unwrap().solution_set(),
            re.query("report(X)").unwrap().solution_set()
        );
        // The unfolded+reordered program should hoist cheap/1 ahead of the
        // spliced gen/2 pair: measurably fewer calls.
        assert!(
            re.query("report(X)").unwrap().counters.user_calls
                <= orig.query("report(X)").unwrap().counters.user_calls
        );
    }

    #[test]
    fn body_growth_is_bounded() {
        let config = UnfoldConfig {
            max_rounds: 5,
            max_body_goals: 4,
        };
        let (out, _) = unfold_program(
            &parse_program(
                "big(X) :- a(X), b(X), c(X), d(X).
                 a(X) :- a1(X), a2(X). b(X) :- b1(X), b2(X).
                 c(X) :- c1(X), c2(X). d(X) :- d1(X), d2(X).
                 a1(1). a2(1). b1(1). b2(1). c1(1). c2(1). d1(1). d2(1).",
            )
            .unwrap(),
            &config,
        );
        let big = out.clauses_of(prolog_syntax::PredId::new("big", 1));
        assert!(
            big[0].body.conjuncts().len() <= 6,
            "growth must respect the cap"
        );
    }
}
