//! Cost-driven source-to-source reordering of Prolog programs — the
//! primary contribution of Gooley & Wah, *Efficient Reordering of Prolog
//! Programs* (ICDE 1988).
//!
//! Given a Prolog program, the reorderer:
//!
//! 1. runs the static analyses (fixity, semifixity, recursion, legal
//!    modes — see `prolog-analysis`);
//! 2. estimates a success probability and expected cost for every
//!    predicate in every calling mode, propagating bottom-up over the call
//!    graph with the absorbing-Markov-chain clause model
//!    (`prolog-markov`);
//! 3. for each predicate and each legal `+`/`-` calling mode, picks the
//!    cheapest legal order of goals in every clause (exhaustive search for
//!    short bodies, best-first A* otherwise) and the best order of clauses
//!    (decreasing `p/c`), honouring every restriction of paper §IV;
//! 4. emits a **mode-specialised** program: one version per calling mode
//!    (`aunt_uu`, `aunt_ui`, …) plus `var/1`-test dispatchers, exactly the
//!    output format of paper §VII.
//!
//! # Quickstart
//!
//! ```
//! use reorder::{ReorderConfig, Reorderer};
//!
//! let src = "
//!     girl(ann). girl(sue).
//!     wife(tom, amy). wife(jim, eve).
//!     female(X) :- girl(X).
//!     female(X) :- wife(_, X).
//!     grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
//!     grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
//!     parent(C, P) :- mother(C, P).
//!     parent(C, P) :- mother(C, M), wife(P, M).
//!     mother(bob, ann). mother(tom, sue).
//! ";
//! let program = prolog_syntax::parse_program(src).unwrap();
//! let result = Reorderer::new(&program, ReorderConfig::default()).run();
//! // The reordered program contains mode-specialised versions …
//! assert!(result
//!     .program
//!     .predicates()
//!     .iter()
//!     .any(|p| p.name.as_str() == "grandmother_uu"));
//! // … and the report records the per-mode decisions.
//! assert!(!result.report.predicates.is_empty());
//! ```

pub mod blocks;
pub mod clause_order;
pub mod config;
pub mod costs;
pub mod driver;
pub mod empirical;
pub mod entry;
pub mod oracle;
pub mod report;
pub mod scan;
pub mod search;
pub mod specialize;
pub mod unfold;
pub mod warren;

pub use config::{CostModelKind, ReorderConfig};
pub use costs::Estimator;
pub use driver::{ReorderResult, Reorderer};
pub use empirical::{
    calibrate, calibrate_detailed, calibrate_loop, harvest_universe, ArgDomains, CalibrationConfig,
    CalibrationOptions, CalibrationOutcome, CalibrationRound, DetailedCosts, DivergenceRow,
    MeasuredCosts, PairMeasurement,
};
pub use entry::{
    calibrate_source, reorder_source, reorder_source_calibrated, reorder_source_with, SourceOutcome,
};
pub use oracle::ModeOracle;
pub use report::{ModeReport, PredicateReport, ReorderReport, RunStats};
pub use unfold::{unfold_program, UnfoldConfig};
// Re-exported so downstream crates (the reordd daemon) can name the
// engine that `CalibrationConfig::engine` selects without depending on
// the engine crate directly.
pub use prolog_engine::EngineKind;
