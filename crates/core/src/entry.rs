//! One-shot source-to-source entry point: Prolog text in, reordered
//! Prolog text out.
//!
//! The `reorder-prolog` CLI and the `reordd` service both need the same
//! parse → (optionally unfold) → reorder → pretty-print pipeline; this
//! module is that pipeline behind a single call, so the two front ends
//! can never disagree about what a program reorders to. Byte-identical
//! output across callers is load-bearing: the server's content-addressed
//! cache and the differential tests both compare emitted text directly.

use crate::config::ReorderConfig;
use crate::driver::Reorderer;
use crate::empirical::{calibrate_loop, CalibrationOptions, CalibrationOutcome, MeasuredCosts};
use crate::report::ReorderReport;
use crate::unfold::{unfold_program, UnfoldConfig};
use prolog_syntax::{ParseError, PredId};

/// Product of [`reorder_source`]: the emitted program text plus the
/// decision report (which carries [`crate::report::RunStats`]).
#[derive(Debug)]
pub struct SourceOutcome {
    /// The reordered program, pretty-printed — exactly what the CLI
    /// writes to its output.
    pub text: String,
    pub report: ReorderReport,
    /// Goals inlined by the unfolding pre-pass (0 when disabled).
    pub unfolded_goals: usize,
}

/// Parses `src`, runs the reordering pipeline under `config`, and
/// pretty-prints the result. Returns the parse error (with its 1-based
/// line/column position) when `src` is not a valid program.
pub fn reorder_source(src: &str, config: &ReorderConfig) -> Result<SourceOutcome, ParseError> {
    reorder_source_with(src, config, None)
}

/// [`reorder_source`] with an optional unfolding pre-pass (the CLI's
/// `--unfold` flag).
pub fn reorder_source_with(
    src: &str,
    config: &ReorderConfig,
    unfold: Option<&UnfoldConfig>,
) -> Result<SourceOutcome, ParseError> {
    let _pipeline_span = prolog_trace::span_with("reorder.pipeline", || {
        prolog_trace::fields::Obj::new().u64("source_bytes", src.len() as u64)
    });
    let parse_span = prolog_trace::span("reorder.parse");
    let program = prolog_syntax::parse_program(src)?;
    drop(parse_span);
    let (program, unfolded_goals) = match unfold {
        Some(unfold_config) => {
            let _unfold_span = prolog_trace::span("reorder.unfold");
            unfold_program(&program, unfold_config)
        }
        None => (program, 0),
    };
    let result = Reorderer::new(&program, config.clone()).run();
    let emit_span = prolog_trace::span("reorder.emit_text");
    let text = prolog_syntax::pretty::program_to_string(&result.program);
    drop(emit_span);
    Ok(SourceOutcome {
        text,
        report: result.report,
        unfolded_goals,
    })
}

/// Parses `src` and runs the closed calibration loop (measure → override
/// → re-plan → validate, see [`calibrate_loop`]) instead of a single
/// static pass. Returns the converged emission in the same
/// [`SourceOutcome`] shape as [`reorder_source`], plus the loop's log
/// (rounds, pins, divergence table) for reporting.
///
/// Like [`reorder_source`], the emitted text is a pure function of
/// `(src, config, opts)` — the calibration measurements run on a
/// deterministic engine — so cached and fresh results stay byte-identical
/// for any `jobs` setting.
pub fn calibrate_source(
    src: &str,
    config: &ReorderConfig,
    opts: &CalibrationOptions,
) -> Result<(SourceOutcome, CalibrationOutcome), ParseError> {
    let _pipeline_span = prolog_trace::span_with("reorder.calibrate_pipeline", || {
        prolog_trace::fields::Obj::new()
            .u64("source_bytes", src.len() as u64)
            .u64("rounds", opts.rounds as u64)
    });
    let program = prolog_syntax::parse_program(src)?;
    let outcome = calibrate_loop(&program, config, opts);
    let text = prolog_syntax::pretty::program_to_string(&outcome.result.program);
    Ok((
        SourceOutcome {
            text,
            report: outcome.result.report.clone(),
            unfolded_goals: 0,
        },
        outcome,
    ))
}

/// Replays a converged calibration without re-running the measurement
/// engines: reorders `src` with a previously measured override set
/// installed and `pinned` predicates kept at their original definition.
///
/// This is the fixed-point replay the calibration-loop tests pin down —
/// the emission is byte-identical to the [`calibrate_source`] run that
/// produced `measured` and `pinned`. A caller that holds a converged
/// override set (the `reordd` daemon after a `calibrate` request) uses
/// this to serve calibrated results at plain-reorder cost.
pub fn reorder_source_calibrated(
    src: &str,
    config: &ReorderConfig,
    measured: &MeasuredCosts,
    pinned: &[PredId],
) -> Result<SourceOutcome, ParseError> {
    let _pipeline_span = prolog_trace::span_with("reorder.replay_pipeline", || {
        prolog_trace::fields::Obj::new()
            .u64("source_bytes", src.len() as u64)
            .u64("overrides", measured.len() as u64)
    });
    let program = prolog_syntax::parse_program(src)?;
    let config = ReorderConfig {
        pinned: pinned.to_vec(),
        ..config.clone()
    };
    let result = Reorderer::new(&program, config)
        .with_measured_costs(measured.clone())
        .run();
    let text = prolog_syntax::pretty::program_to_string(&result.program);
    Ok(SourceOutcome {
        text,
        report: result.report,
        unfolded_goals: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        girl(ann). girl(sue).
        wife(tom, amy). wife(jim, eve).
        female(X) :- girl(X).
        female(X) :- wife(_, X).
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
        grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
        parent(C, P) :- mother(C, P).
        parent(C, P) :- mother(C, M), wife(P, M).
        mother(bob, ann). mother(tom, sue).
    ";

    #[test]
    fn matches_the_manual_pipeline_byte_for_byte() {
        let config = ReorderConfig::default();
        let outcome = reorder_source(SRC, &config).unwrap();
        let program = prolog_syntax::parse_program(SRC).unwrap();
        let manual = Reorderer::new(&program, config).run();
        assert_eq!(
            outcome.text,
            prolog_syntax::pretty::program_to_string(&manual.program)
        );
        assert!(outcome.text.contains("grandmother_uu"));
        assert_eq!(outcome.unfolded_goals, 0);
        assert!(outcome.report.stats.tasks > 0);
    }

    #[test]
    fn surfaces_parse_errors_with_position() {
        let err = reorder_source("p(1.\nq(", &ReorderConfig::default()).unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(err.pos.col >= 1);
    }

    #[test]
    fn calibrated_replay_matches_the_loop_byte_for_byte() {
        let config = ReorderConfig::default();
        let opts = CalibrationOptions {
            rounds: 2,
            ..Default::default()
        };
        let (outcome, calibration) = calibrate_source(SRC, &config, &opts).unwrap();
        let replay =
            reorder_source_calibrated(SRC, &config, &calibration.measured, &calibration.pinned)
                .unwrap();
        assert_eq!(replay.text, outcome.text);
    }

    #[test]
    fn unfold_pre_pass_is_reported() {
        let src = "p(X) :- q(X), r(X). q(X) :- s(X). s(1). s(2). r(1).";
        let outcome = reorder_source_with(
            src,
            &ReorderConfig::default(),
            Some(&UnfoldConfig::default()),
        )
        .unwrap();
        let plain = reorder_source(src, &ReorderConfig::default()).unwrap();
        // The pre-pass either inlines something or leaves the program
        // identical; both must stay deterministic.
        if outcome.unfolded_goals == 0 {
            assert_eq!(outcome.text, plain.text);
        }
    }
}
