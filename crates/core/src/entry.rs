//! One-shot source-to-source entry point: Prolog text in, reordered
//! Prolog text out.
//!
//! The `reorder-prolog` CLI and the `reordd` service both need the same
//! parse → (optionally unfold) → reorder → pretty-print pipeline; this
//! module is that pipeline behind a single call, so the two front ends
//! can never disagree about what a program reorders to. Byte-identical
//! output across callers is load-bearing: the server's content-addressed
//! cache and the differential tests both compare emitted text directly.

use crate::config::ReorderConfig;
use crate::driver::Reorderer;
use crate::report::ReorderReport;
use crate::unfold::{unfold_program, UnfoldConfig};
use prolog_syntax::ParseError;

/// Product of [`reorder_source`]: the emitted program text plus the
/// decision report (which carries [`crate::report::RunStats`]).
#[derive(Debug)]
pub struct SourceOutcome {
    /// The reordered program, pretty-printed — exactly what the CLI
    /// writes to its output.
    pub text: String,
    pub report: ReorderReport,
    /// Goals inlined by the unfolding pre-pass (0 when disabled).
    pub unfolded_goals: usize,
}

/// Parses `src`, runs the reordering pipeline under `config`, and
/// pretty-prints the result. Returns the parse error (with its 1-based
/// line/column position) when `src` is not a valid program.
pub fn reorder_source(src: &str, config: &ReorderConfig) -> Result<SourceOutcome, ParseError> {
    reorder_source_with(src, config, None)
}

/// [`reorder_source`] with an optional unfolding pre-pass (the CLI's
/// `--unfold` flag).
pub fn reorder_source_with(
    src: &str,
    config: &ReorderConfig,
    unfold: Option<&UnfoldConfig>,
) -> Result<SourceOutcome, ParseError> {
    let _pipeline_span = prolog_trace::span_with("reorder.pipeline", || {
        prolog_trace::fields::Obj::new().u64("source_bytes", src.len() as u64)
    });
    let parse_span = prolog_trace::span("reorder.parse");
    let program = prolog_syntax::parse_program(src)?;
    drop(parse_span);
    let (program, unfolded_goals) = match unfold {
        Some(unfold_config) => {
            let _unfold_span = prolog_trace::span("reorder.unfold");
            unfold_program(&program, unfold_config)
        }
        None => (program, 0),
    };
    let result = Reorderer::new(&program, config.clone()).run();
    let emit_span = prolog_trace::span("reorder.emit_text");
    let text = prolog_syntax::pretty::program_to_string(&result.program);
    drop(emit_span);
    Ok(SourceOutcome {
        text,
        report: result.report,
        unfolded_goals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        girl(ann). girl(sue).
        wife(tom, amy). wife(jim, eve).
        female(X) :- girl(X).
        female(X) :- wife(_, X).
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
        grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
        parent(C, P) :- mother(C, P).
        parent(C, P) :- mother(C, M), wife(P, M).
        mother(bob, ann). mother(tom, sue).
    ";

    #[test]
    fn matches_the_manual_pipeline_byte_for_byte() {
        let config = ReorderConfig::default();
        let outcome = reorder_source(SRC, &config).unwrap();
        let program = prolog_syntax::parse_program(SRC).unwrap();
        let manual = Reorderer::new(&program, config).run();
        assert_eq!(
            outcome.text,
            prolog_syntax::pretty::program_to_string(&manual.program)
        );
        assert!(outcome.text.contains("grandmother_uu"));
        assert_eq!(outcome.unfolded_goals, 0);
        assert!(outcome.report.stats.tasks > 0);
    }

    #[test]
    fn surfaces_parse_errors_with_position() {
        let err = reorder_source("p(1.\nq(", &ReorderConfig::default()).unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(err.pos.col >= 1);
    }

    #[test]
    fn unfold_pre_pass_is_reported() {
        let src = "p(X) :- q(X), r(X). q(X) :- s(X). s(1). s(2). r(1).";
        let outcome = reorder_source_with(
            src,
            &ReorderConfig::default(),
            Some(&UnfoldConfig::default()),
        )
        .unwrap();
        let plain = reorder_source(src, &ReorderConfig::default()).unwrap();
        // The pre-pass either inlines something or leaves the program
        // identical; both must stay deterministic.
        if outcome.unfolded_goals == 0 {
            assert_eq!(outcome.text, plain.text);
        }
    }
}
