//! Empirical cost calibration — the paper's "extended Warren's method"
//! (§I-E).
//!
//! "We call each predicate, forcing repeated backtracking, and count the
//! solution-tuples." The paper used this before the Markov model and
//! notes it is expensive but effective; Ledeniov & Markovitch later
//! argued the same point from the other side: guessed subgoal costs are
//! exactly what makes a reorderer occasionally *pessimise* a program.
//!
//! Two layers live here:
//!
//! * [`calibrate`] / [`calibrate_detailed`] — the one-shot measurement
//!   pass: run every `+`/`-` mode of the listed predicates against the
//!   real engine and record mean call costs and solution counts. Each
//!   mode gets a fresh engine (no state can leak between measurements)
//!   and each sample is judged individually: a sample that exhausts its
//!   call budget is skipped, a sample that is *illegal* in the mode
//!   (instantiation or type error) discards the whole mode, and a mode
//!   whose every sample diverges is discarded as unmeasurable.
//!
//! * [`calibrate_loop`] — the closed feedback loop: measure the input
//!   program, install the measurements as estimator overrides, re-plan,
//!   re-emit, then measure the *emitted* specialised versions (their
//!   per-predicate call attribution comes from [`QueryOutcome::profile`])
//!   and feed those measurements back as the next round's overrides.
//!   Pairs whose specialisation measured worse than the input ordering
//!   are repaired: when the run's profile shows a dispatcher was hit
//!   (a meta-call routed through the `var/1` dispatcher on every
//!   activation, a cost the static model never charges), the dispatching
//!   predicate is pinned to its original definition; a predicate that is
//!   a net measured loss across all its modes is pinned likewise. The
//!   loop stops at a fixed point — emitted bytes unchanged, or every
//!   re-measured cost within `epsilon` of the previous round — or at the
//!   bounded round count.
//!
//! [`QueryOutcome::profile`]: prolog_engine::QueryOutcome

use crate::config::ReorderConfig;
use crate::costs::{p_to_solutions, solutions_to_p};
use crate::driver::{ReorderResult, Reorderer};
use prolog_analysis::{Mode, ModeItem};
use prolog_engine::{Engine, EngineError, EngineKind, MachineConfig, PredProfile};
use prolog_markov::GoalStats;
use prolog_syntax::{sym, Body, PredId, SourceProgram, Symbol, Term};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Limits for the calibration runs.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Sample at most this many bound-argument combinations per mode.
    pub max_queries_per_mode: usize,
    /// Abort a runaway query after this many calls. The sample is then
    /// skipped; the mode survives if any other sample completed.
    pub max_calls_per_query: u64,
    /// Which engine runs the measurement queries. Call counts are
    /// engine-independent (the compiled engine counts identically by
    /// construction), so this only changes calibration wall time.
    pub engine: EngineKind,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            max_queries_per_mode: 64,
            max_calls_per_query: 1_000_000,
            engine: EngineKind::default(),
        }
    }
}

/// Measured statistics for `(predicate, mode)` pairs.
pub type MeasuredCosts = HashMap<(PredId, Mode), GoalStats>;

/// One `(pred, mode)` measurement with its sampling bookkeeping — what
/// the closed loop and the divergence report need beyond the bare stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMeasurement {
    /// Mean cost (predicate calls) and mean solutions per query, encoded
    /// the way the estimator consumes them.
    pub stats: GoalStats,
    /// Total predicate calls across the completed samples.
    pub total_calls: u64,
    /// Samples that ran to completion.
    pub measured: usize,
    /// Samples skipped for exhausting the per-query call budget.
    pub skipped: usize,
}

/// Detailed measurements per `(predicate, mode)` pair.
pub type DetailedCosts = HashMap<(PredId, Mode), PairMeasurement>;

/// Runs every `+`/`-` mode of every listed predicate against the real
/// engine, measuring mean predicate calls and mean solution counts.
///
/// `universe` supplies the constants substituted into `+` positions.
pub fn calibrate(
    program: &SourceProgram,
    preds: &[PredId],
    universe: &[Term],
    config: &CalibrationConfig,
) -> MeasuredCosts {
    calibrate_detailed(program, preds, universe, config)
        .into_iter()
        .map(|(key, m)| (key, m.stats))
        .collect()
}

/// [`calibrate`], keeping the per-pair sampling detail.
pub fn calibrate_detailed(
    program: &SourceProgram,
    preds: &[PredId],
    universe: &[Term],
    config: &CalibrationConfig,
) -> DetailedCosts {
    calibrate_pairs(program, preds, universe, None, config)
}

/// The measurement pass behind [`calibrate_detailed`]. With `domains`,
/// each `+` position samples from its inferred argument domain (the
/// closed loop's path); without, every position samples the flat
/// `fallback` universe (the public one-shot API, which keeps the paper's
/// "one call for each possible instantiation" protocol).
fn calibrate_pairs(
    program: &SourceProgram,
    preds: &[PredId],
    fallback: &[Term],
    domains: Option<&ArgDomains>,
    config: &CalibrationConfig,
) -> DetailedCosts {
    let mut out = DetailedCosts::new();
    for &pred in preds {
        let universes = position_universes(pred, pred.arity, domains, fallback);
        for mode in Mode::enumerate_plus_minus(pred.arity) {
            let queries =
                sample_queries_each(pred.name, &mode, &universes, config.max_queries_per_mode);
            if queries.is_empty() {
                continue;
            }
            // A fresh engine per mode: no counters, buffered input, or
            // other engine state can leak from one measurement into the
            // next, so interleaved and isolated runs measure identically.
            let mut engine = fresh_engine(program, config);
            if let Some((m, _)) = measure_queries_on(&mut engine, &queries) {
                out.insert((pred, mode), m);
            }
        }
    }
    out
}

/// One sampling universe per argument position of `pred`: its inferred
/// domain when available, the flat fallback otherwise.
fn position_universes<'a>(
    pred: PredId,
    arity: usize,
    domains: Option<&'a ArgDomains>,
    fallback: &'a [Term],
) -> Vec<&'a [Term]> {
    (0..arity)
        .map(|pos| match domains {
            Some(d) => d.universe(pred, pos, fallback),
            None => fallback,
        })
        .collect()
}

fn fresh_engine(program: &SourceProgram, config: &CalibrationConfig) -> Engine {
    let mut engine = Engine::with_config(MachineConfig {
        max_calls: config.max_calls_per_query,
        unknown_fails: true,
        profile: true,
        engine: config.engine,
        ..Default::default()
    });
    engine.load(program);
    engine
}

/// Runs the sampled queries, aggregating counters, solutions, and the
/// per-predicate profile. Returns `None` when the mode is unmeasurable:
/// a sample raised a run-time error other than a resource limit (the
/// mode is illegal), or every sample exhausted its budget (the mode
/// diverges).
fn measure_queries_on(
    engine: &mut Engine,
    queries: &[Term],
) -> Option<(PairMeasurement, BTreeMap<PredId, PredProfile>)> {
    let mut total_calls = 0u64;
    let mut total_solutions = 0usize;
    let mut measured = 0usize;
    let mut skipped = 0usize;
    let mut profile: BTreeMap<PredId, PredProfile> = BTreeMap::new();
    for goal in queries {
        let nvars = goal.variables().len();
        let names: Vec<String> = (0..nvars).map(|i| format!("V{i}")).collect();
        match engine.query_term(goal, &names, usize::MAX) {
            Ok(outcome) => {
                total_calls += outcome.counters.user_calls;
                total_solutions += outcome.solutions.len();
                measured += 1;
                for (name, p) in &outcome.profile {
                    if let Some(id) = parse_pred_row(name) {
                        let entry = profile.entry(id).or_default();
                        entry.calls += p.calls;
                        entry.backtracks += p.backtracks;
                    }
                }
            }
            // The budget bounding one instantiation says nothing about
            // the others: skip the sample, keep the mode.
            Err(EngineError::CallLimit(_)) | Err(EngineError::DepthLimit(_)) => {
                skipped += 1;
            }
            // Illegal in this mode (instantiation, type, …): the mode
            // itself is unusable, however the other samples fared.
            Err(_) => return None,
        }
    }
    if measured == 0 {
        return None;
    }
    let mean_cost = (total_calls as f64 / measured as f64).max(1.0);
    let mean_solutions = total_solutions as f64 / measured as f64;
    Some((
        PairMeasurement {
            stats: GoalStats::new(solutions_to_p(mean_solutions), mean_cost),
            total_calls,
            measured,
            skipped,
        },
        profile,
    ))
}

/// Parses a `"name/arity"` profile row back into a [`PredId`].
fn parse_pred_row(row: &str) -> Option<PredId> {
    let (name, arity) = row.rsplit_once('/')?;
    Some(PredId::new(name, arity.parse().ok()?))
}

/// Builds up to `max` query terms for a mode: the mixed-radix cartesian
/// product over the `+` positions, each drawing from its own universe,
/// sampled with a fixed stride when it exceeds the budget. Any bound
/// position with an empty universe makes the mode unsampleable.
fn sample_queries_each(name: Symbol, mode: &Mode, universes: &[&[Term]], max: usize) -> Vec<Term> {
    let sizes: Vec<usize> = mode
        .items()
        .iter()
        .enumerate()
        .filter(|(_, m)| **m == ModeItem::Plus)
        .map(|(i, _)| universes[i].len())
        .collect();
    if sizes.contains(&0) {
        return Vec::new();
    }
    let total: usize = sizes
        .iter()
        .fold(1usize, |acc, &n| acc.saturating_mul(n))
        .max(1);
    let take = total.min(max);
    let stride = (total / take.max(1)).max(1);
    let mut out = Vec::with_capacity(take);
    let mut index = 0usize;
    while out.len() < take {
        let mut combo = index;
        let mut args = Vec::with_capacity(mode.arity());
        let mut var_idx = 0;
        for (pos, item) in mode.items().iter().enumerate() {
            match item {
                ModeItem::Plus => {
                    let domain = universes[pos];
                    args.push(domain[combo % domain.len()].clone());
                    combo /= domain.len();
                }
                _ => {
                    args.push(Term::Var(var_idx));
                    var_idx += 1;
                }
            }
        }
        out.push(Term::struct_(name, args));
        index += stride;
    }
    out
}

/// Collects up to `max` distinct constants (atoms and integers) from the
/// program's fact arguments, in first-appearance order — the default
/// calibration universe when the caller supplies none.
pub fn harvest_universe(program: &SourceProgram, max: usize) -> Vec<Term> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for clause in &program.clauses {
        if !clause.is_fact() {
            continue;
        }
        for arg in clause.head.args() {
            let constant = match arg {
                Term::Atom(_) | Term::Int(_) => arg.clone(),
                _ => continue,
            };
            if seen.insert(constant.to_string()) {
                out.push(constant);
                if out.len() >= max {
                    return out;
                }
            }
        }
    }
    out
}

/// Per-position argument domains inferred from the program.
///
/// A flat constant universe poisons `+`-mode measurements the moment a
/// program mixes value kinds: sampling `employee(+)` over department
/// names drags its measured selectivity down and the re-planned orders
/// inherit the skew. The inference here is a union-find over the
/// `(predicate, argument position)` slots of user-defined predicates:
/// every clause that threads one variable through two slots links them,
/// and every constant observed at a slot seeds its class. Each
/// equivalence class approximates a monomorphic argument type, so a `+`
/// position is instantiated only with values the program itself passes
/// (or stores) there.
pub struct ArgDomains {
    domains: HashMap<(PredId, usize), Vec<Term>>,
}

impl ArgDomains {
    /// Infers the domains of `program`, keeping at most `cap` constants
    /// per equivalence class (first-appearance order, like
    /// [`harvest_universe`]).
    pub fn infer(program: &SourceProgram, cap: usize) -> ArgDomains {
        let defined: HashSet<PredId> = program.predicates().into_iter().collect();
        let mut slot_of: HashMap<(PredId, usize), usize> = HashMap::new();
        for pred in program.predicates() {
            for pos in 0..pred.arity {
                let next = slot_of.len();
                slot_of.entry((pred, pos)).or_insert(next);
            }
        }
        let mut parent: Vec<usize> = (0..slot_of.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        // Pass 1: link slots that share a variable within one clause.
        for clause in &program.clauses {
            let mut var_slot: HashMap<usize, usize> = HashMap::new();
            for (pred, args) in clause_call_sites(clause, &defined) {
                for (pos, arg) in args.iter().enumerate() {
                    let Term::Var(v) = arg else { continue };
                    let slot = slot_of[&(pred, pos)];
                    match var_slot.get(v) {
                        Some(&first) => {
                            let (a, b) = (find(&mut parent, first), find(&mut parent, slot));
                            parent[a] = b;
                        }
                        None => {
                            var_slot.insert(*v, slot);
                        }
                    }
                }
            }
        }

        // Pass 2: seed every class with the constants observed at its
        // slots, in program order, deduplicated, capped.
        let mut consts: HashMap<usize, Vec<Term>> = HashMap::new();
        let mut seen: HashMap<usize, HashSet<String>> = HashMap::new();
        for clause in &program.clauses {
            for (pred, args) in clause_call_sites(clause, &defined) {
                for (pos, arg) in args.iter().enumerate() {
                    let constant = match arg {
                        Term::Atom(_) | Term::Int(_) => arg.clone(),
                        _ => continue,
                    };
                    let root = find(&mut parent, slot_of[&(pred, pos)]);
                    let class = consts.entry(root).or_default();
                    if class.len() < cap
                        && seen.entry(root).or_default().insert(constant.to_string())
                    {
                        class.push(constant);
                    }
                }
            }
        }

        let domains = slot_of
            .iter()
            .map(|(&key, &slot)| {
                let root = find(&mut parent, slot);
                (key, consts.get(&root).cloned().unwrap_or_default())
            })
            .collect();
        ArgDomains { domains }
    }

    /// The sampling universe for a `+` position: the inferred domain, or
    /// `fallback` when the position's class observed no constants.
    pub fn universe<'a>(&'a self, pred: PredId, pos: usize, fallback: &'a [Term]) -> &'a [Term] {
        match self.domains.get(&(pred, pos)) {
            Some(domain) if !domain.is_empty() => domain,
            _ => fallback,
        }
    }
}

/// Every call site of a clause whose predicate is user-defined — the
/// head plus each plain goal anywhere in the body tree (negations and
/// if-then-else branches included) — with its argument terms.
fn clause_call_sites<'a>(
    clause: &'a prolog_syntax::Clause,
    defined: &HashSet<PredId>,
) -> Vec<(PredId, &'a [Term])> {
    fn walk<'a>(body: &'a Body, defined: &HashSet<PredId>, out: &mut Vec<(PredId, &'a [Term])>) {
        match body {
            Body::Call(t) => {
                if let Some(id) = t.pred_id() {
                    if defined.contains(&id) {
                        out.push((id, t.args()));
                    }
                }
            }
            Body::And(a, b) | Body::Or(a, b) => {
                walk(a, defined, out);
                walk(b, defined, out);
            }
            Body::IfThenElse(c, t, e) => {
                walk(c, defined, out);
                walk(t, defined, out);
                walk(e, defined, out);
            }
            Body::Not(g) => walk(g, defined, out),
            Body::True | Body::Fail | Body::Cut => {}
        }
    }
    let mut out = Vec::new();
    if let Some(id) = clause.head.pred_id() {
        if defined.contains(&id) {
            out.push((id, clause.head.args()));
        }
    }
    walk(&clause.body, defined, &mut out);
    out
}

/// Knobs of the closed calibration loop.
#[derive(Debug, Clone)]
pub struct CalibrationOptions {
    /// Maximum measure → re-plan rounds (the CLI's `--calibrate N`).
    pub rounds: usize,
    /// Per-round sampling limits.
    pub sample: CalibrationConfig,
    /// Convergence threshold: the loop stops when no re-measured cost
    /// moved by more than this many calls (and no new pin was needed).
    pub epsilon: f64,
    /// Cap on the constants harvested into the calibration universe.
    pub max_universe: usize,
    /// Only predicates with arity `1..=max_arity` are measured directly
    /// (the cartesian query sets above that are uninformative anyway).
    pub max_arity: usize,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            rounds: 2,
            sample: CalibrationConfig::default(),
            epsilon: 0.5,
            max_universe: 64,
            max_arity: 3,
        }
    }
}

/// Static-estimate vs. measurement for one `(pred, mode)` pair.
#[derive(Debug, Clone)]
pub struct DivergenceRow {
    pub pred: PredId,
    pub mode: Mode,
    /// Cost the static model assigned the pair (no overrides installed).
    pub static_cost: f64,
    /// Mean cost measured on the input program.
    pub measured_cost: f64,
    /// Expected solutions under the static model.
    pub static_solutions: f64,
    /// Mean solutions measured on the input program.
    pub measured_solutions: f64,
}

impl DivergenceRow {
    /// How far off the static cost was, as a factor (`measured/static`).
    pub fn cost_ratio(&self) -> f64 {
        if self.static_cost <= 0.0 {
            return f64::INFINITY;
        }
        self.measured_cost / self.static_cost
    }
}

/// What one round of the loop did.
#[derive(Debug, Clone)]
pub struct CalibrationRound {
    /// 0-based round index.
    pub round: usize,
    /// Override pairs installed for this round's planning.
    pub overrides: usize,
    /// Emitted bytes differ from the previous round (round 0 compares
    /// against the uncalibrated plan).
    pub plan_changed: bool,
    /// Largest cost movement across the pairs re-measured this round.
    pub max_cost_delta: f64,
    /// Predicates newly pinned by this round's validation, sorted.
    pub new_pins: Vec<PredId>,
}

/// Product of [`calibrate_loop`].
pub struct CalibrationOutcome {
    /// The final (converged or round-capped) reordering run.
    pub result: ReorderResult,
    /// The override set behind the final run.
    pub measured: MeasuredCosts,
    /// Predicates pinned to their original definition, sorted.
    pub pinned: Vec<PredId>,
    /// Per-round log.
    pub rounds: Vec<CalibrationRound>,
    /// The loop reached its fixed point within the round budget.
    pub converged: bool,
    /// Static vs. measured estimates on the input program, sorted by
    /// pair; the `--calibrate-report` table.
    pub divergence: Vec<DivergenceRow>,
}

impl CalibrationOutcome {
    /// Human-readable account of the loop — the round log, the pins, and
    /// the static-vs-measured divergence table (`--calibrate-report`).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "calibration: {} round(s), {}",
            self.rounds.len(),
            if self.converged {
                "converged"
            } else {
                "round budget exhausted"
            }
        );
        for r in &self.rounds {
            let pins = if r.new_pins.is_empty() {
                String::new()
            } else {
                format!(
                    ", pinned {}",
                    r.new_pins
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            };
            let _ = writeln!(
                out,
                "  round {}: {} overrides, plan {}, max cost delta {:.1}{}",
                r.round,
                r.overrides,
                if r.plan_changed {
                    "changed"
                } else {
                    "unchanged"
                },
                r.max_cost_delta,
                pins
            );
        }
        if !self.pinned.is_empty() {
            let _ = writeln!(
                out,
                "pinned to original definition: {}",
                self.pinned
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        let _ = writeln!(
            out,
            "divergence (static estimate vs measured, input program):"
        );
        let _ = writeln!(
            out,
            "  {:<20} {:<6} {:>12} {:>12} {:>8} {:>10} {:>10}",
            "pred", "mode", "static-cost", "meas-cost", "ratio", "static-sol", "meas-sol"
        );
        for row in &self.divergence {
            let _ = writeln!(
                out,
                "  {:<20} {:<6} {:>12.1} {:>12.1} {:>8.2} {:>10.2} {:>10.2}",
                row.pred.to_string(),
                row.mode.suffix(),
                row.static_cost,
                row.measured_cost,
                row.cost_ratio(),
                row.static_solutions,
                row.measured_solutions
            );
        }
        out
    }
}

/// Runs the closed measure → override → re-plan → validate loop on
/// `program` and returns the final reordering together with the log.
pub fn calibrate_loop(
    program: &SourceProgram,
    config: &ReorderConfig,
    opts: &CalibrationOptions,
) -> CalibrationOutcome {
    let universe = harvest_universe(program, opts.max_universe);
    let domains = ArgDomains::infer(program, opts.max_universe);
    let preds: Vec<PredId> = program
        .predicates()
        .into_iter()
        .filter(|p| (1..=opts.max_arity).contains(&p.arity))
        .collect();

    // Ground truth: how the *input* ordering behaves. Also the baseline
    // every emitted version must beat (or match) to survive validation.
    let base = calibrate_pairs(program, &preds, &universe, Some(&domains), &opts.sample);
    let mut measured: DetailedCosts = base.clone();
    let mut pinned: BTreeSet<PredId> = config.pinned.iter().copied().collect();

    // The uncalibrated plan, for the divergence report (its per-mode
    // `original` stats are the static estimates — no overrides are
    // installed) and as round 0's "previous" emission.
    let static_result = Reorderer::new(program, config.clone()).run();
    let divergence = divergence_rows(&static_result, &base);
    let mut prev_text = prolog_syntax::pretty::program_to_string(&static_result.program);

    let mut rounds = Vec::new();
    let mut converged = false;
    let mut last: Option<ReorderResult> = None;
    for round in 0..opts.rounds.max(1) {
        let round_config = ReorderConfig {
            pinned: pinned.iter().copied().collect(),
            ..config.clone()
        };
        let overrides: MeasuredCosts = measured
            .iter()
            .map(|(key, m)| (key.clone(), m.stats))
            .collect();
        let result = Reorderer::new(program, round_config)
            .with_measured_costs(overrides.clone())
            .run();
        let text = prolog_syntax::pretty::program_to_string(&result.program);
        let plan_changed = text != prev_text;

        // Measure the emitted versions and validate them against the
        // input-ordering baseline. Predicates the planner skipped are
        // measured too (under their original names): a regression there
        // is a callee's dispatcher charging meta-calls inside a body the
        // planner never touched.
        let emitted = measure_versions(&result, &base, &domains, &universe, &opts.sample);
        let specialized: HashSet<PredId> = result
            .report
            .predicates
            .iter()
            .filter(|p| p.skipped.is_none() && !p.modes.is_empty())
            .map(|p| p.pred)
            .collect();
        let mut new_pins: BTreeSet<PredId> = BTreeSet::new();
        let mut net: BTreeMap<PredId, f64> = BTreeMap::new();
        for ((pred, mode), em) in emitted.iter() {
            let Some(b) = base.get(&(*pred, mode.clone())) else {
                continue;
            };
            *net.entry(*pred).or_default() += em.measurement.stats.cost - b.stats.cost;
            if em.measurement.stats.cost > b.stats.cost {
                // The version measured worse than the input ordering.
                // Dispatchers hit during the run are the usual culprit (a
                // per-meta-call hop the model never charged); pin them. A
                // predicate that regressed with no dispatcher in sight is
                // judged on its net cost below.
                for &culprit in &em.dispatchers_hit {
                    if !pinned.contains(&culprit) {
                        new_pins.insert(culprit);
                    }
                }
            }
        }
        // Net losers with no dispatcher to blame: pin the predicate
        // itself — reordering it was a measured pessimisation. Only
        // specialised predicates qualify; a skipped predicate is already
        // emitted verbatim, so pinning it would change nothing (and the
        // loop would re-pin it forever).
        if new_pins.is_empty() {
            for (&pred, &delta) in &net {
                if delta > 0.0 && specialized.contains(&pred) && !pinned.contains(&pred) {
                    new_pins.insert(pred);
                }
            }
        }

        // Feedback: the emitted measurements become the next round's
        // estimates, except for freshly pinned predicates (their next
        // emission is the input definition, so the input measurement is
        // the right estimate again).
        let mut max_cost_delta = 0.0f64;
        for ((pred, mode), em) in emitted.iter() {
            if new_pins.contains(pred) {
                continue;
            }
            let key = (*pred, mode.clone());
            let previous = measured.get(&key).map(|m| m.stats.cost);
            if let Some(prev) = previous {
                max_cost_delta = max_cost_delta.max((em.measurement.stats.cost - prev).abs());
            }
            measured.insert(key, em.measurement);
        }
        for pin in &new_pins {
            for ((pred, mode), b) in base.iter() {
                if pred == pin {
                    measured.insert((*pred, mode.clone()), *b);
                }
            }
        }

        rounds.push(CalibrationRound {
            round,
            overrides: overrides.len(),
            plan_changed,
            max_cost_delta,
            new_pins: new_pins.iter().copied().collect(),
        });
        last = Some(result);
        if new_pins.is_empty() && (!plan_changed || max_cost_delta <= opts.epsilon) {
            converged = true;
            break;
        }
        pinned.extend(new_pins);
        prev_text = text;
    }

    CalibrationOutcome {
        result: last.expect("at least one calibration round runs"),
        measured: measured
            .into_iter()
            .map(|(key, m)| (key, m.stats))
            .collect(),
        pinned: pinned.into_iter().collect(),
        rounds,
        converged,
        divergence,
    }
}

/// An emitted `(pred, mode)` version's measurement, plus the dispatcher
/// predicates its run was routed through (harvested from the engine's
/// per-predicate profile).
struct EmittedPair {
    measurement: PairMeasurement,
    dispatchers_hit: Vec<PredId>,
}

/// Measures every `(pred, mode)` version of a reorder result by querying
/// the version directly (the bench harness's convention), on a fresh
/// engine per mode with profiling on. Skipped predicates — emitted
/// verbatim under their original names — are measured in every mode the
/// input baseline established, so regressions caused by *callees'*
/// dispatchers still surface and get attributed.
fn measure_versions(
    result: &ReorderResult,
    base: &DetailedCosts,
    domains: &ArgDomains,
    fallback: &[Term],
    sample: &CalibrationConfig,
) -> BTreeMap<(PredId, Mode), EmittedPair> {
    // Predicates that dispatch: specialised into versions distinct from
    // the original name, which therefore carries the `var/1` dispatcher.
    let dispatching: HashSet<PredId> = result
        .report
        .predicates
        .iter()
        .filter(|p| p.skipped.is_none())
        .filter(|p| p.modes.iter().any(|m| m.version != p.pred.name.as_str()))
        .map(|p| p.pred)
        .collect();

    let mut out = BTreeMap::new();
    for pred_report in &result.report.predicates {
        let pred = pred_report.pred;
        let universes = position_universes(pred, pred.arity, Some(domains), fallback);
        // (version symbol, mode) pairs to run for this predicate.
        let targets: Vec<(Symbol, Mode)> = if pred_report.skipped.is_some() {
            let mut modes: Vec<Mode> = base
                .keys()
                .filter(|(p, _)| *p == pred)
                .map(|(_, m)| m.clone())
                .collect();
            modes.sort_by_key(|m| m.suffix());
            modes.into_iter().map(|m| (pred.name, m)).collect()
        } else {
            pred_report
                .modes
                .iter()
                .map(|m| (sym(&m.version), m.mode.clone()))
                .collect()
        };
        for (version, mode) in targets {
            let queries =
                sample_queries_each(version, &mode, &universes, sample.max_queries_per_mode);
            if queries.is_empty() {
                continue;
            }
            let mut engine = fresh_engine(&result.program, sample);
            let Some((measurement, profile)) = measure_queries_on(&mut engine, &queries) else {
                continue;
            };
            let dispatchers_hit: Vec<PredId> = profile
                .keys()
                .filter(|id| dispatching.contains(id))
                .copied()
                .collect();
            out.insert(
                (pred, mode),
                EmittedPair {
                    measurement,
                    dispatchers_hit,
                },
            );
        }
    }
    out
}

/// Builds the divergence table: the uncalibrated run's static estimates
/// against the input-program measurements, for every pair both sides
/// know.
fn divergence_rows(static_result: &ReorderResult, base: &DetailedCosts) -> Vec<DivergenceRow> {
    let mut rows = Vec::new();
    for pred_report in &static_result.report.predicates {
        if pred_report.skipped.is_some() {
            continue;
        }
        for mode_report in &pred_report.modes {
            let Some(b) = base.get(&(pred_report.pred, mode_report.mode.clone())) else {
                continue;
            };
            rows.push(DivergenceRow {
                pred: pred_report.pred,
                mode: mode_report.mode.clone(),
                static_cost: mode_report.original.cost,
                measured_cost: b.stats.cost,
                static_solutions: p_to_solutions(mode_report.original.p),
                measured_solutions: p_to_solutions(b.stats.p),
            });
        }
    }
    rows.sort_by_key(|a| (a.pred, a.mode.suffix()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn universe(names: &[&str]) -> Vec<Term> {
        names.iter().map(|n| Term::atom(n)).collect()
    }

    #[test]
    fn measures_fact_predicates_exactly() {
        let p = parse_program("f(a). f(b). f(c).").unwrap();
        let costs = calibrate(
            &p,
            &[PredId::new("f", 1)],
            &universe(&["a", "b", "c", "d"]),
            &CalibrationConfig::default(),
        );
        let free = costs[&(PredId::new("f", 1), Mode::parse("-").unwrap())];
        // one call, three solutions
        assert_eq!(free.cost, 1.0);
        assert!((crate::costs::p_to_solutions(free.p) - 3.0).abs() < 1e-9);
        let bound = costs[&(PredId::new("f", 1), Mode::parse("+").unwrap())];
        // 3 of 4 constants succeed
        assert!((crate::costs::p_to_solutions(bound.p) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn measures_rule_costs_including_descendants() {
        let p = parse_program(
            "r(X) :- f(X), g(X).
             f(a). f(b). g(b).",
        )
        .unwrap();
        let costs = calibrate(
            &p,
            &[PredId::new("r", 1)],
            &universe(&["a", "b"]),
            &CalibrationConfig::default(),
        );
        let free = costs[&(PredId::new("r", 1), Mode::parse("-").unwrap())];
        assert!(free.cost > 1.0, "rule cost includes callees: {}", free.cost);
    }

    #[test]
    fn divergent_modes_are_skipped() {
        let p = parse_program(
            "d(X, [X|Y], Y).
             d(U, [X|Y], [X|V]) :- d(U, Y, V).",
        )
        .unwrap();
        let config = CalibrationConfig {
            max_calls_per_query: 2_000,
            ..Default::default()
        };
        let costs = calibrate(&p, &[PredId::new("d", 3)], &universe(&["a"]), &config);
        // (+,-,-) diverges: must be absent
        assert!(!costs.contains_key(&(PredId::new("d", 3), Mode::parse("+--").unwrap())));
        // Whatever modes did measure belong to the requested predicate.
        assert!(costs.keys().all(|(pred, _)| *pred == PredId::new("d", 3)));
    }

    #[test]
    fn budget_exhausted_samples_are_skipped_without_discarding_the_mode() {
        // p(a) diverges; p(b) measures in one call. The mode survives on
        // the samples that completed.
        let p = parse_program("p(a) :- p(a). p(b).").unwrap();
        let config = CalibrationConfig {
            max_calls_per_query: 1_000,
            ..Default::default()
        };
        let detailed =
            calibrate_detailed(&p, &[PredId::new("p", 1)], &universe(&["a", "b"]), &config);
        let bound = detailed[&(PredId::new("p", 1), Mode::parse("+").unwrap())];
        assert_eq!(bound.measured, 1, "only p(b) completes");
        assert_eq!(bound.skipped, 1, "p(a) exhausts its budget");
        assert_eq!(bound.stats.cost, 1.0);
        // The free mode finds p(a) first and diverges on every (single)
        // sample: unmeasurable, discarded.
        assert!(!detailed.contains_key(&(PredId::new("p", 1), Mode::parse("-").unwrap())));
    }

    #[test]
    fn illegal_modes_are_discarded_even_with_completed_samples() {
        // q(1) measures fine; q(a) raises a type error from `is/2`. The
        // error marks the mode illegal, so the pair must be absent even
        // though one sample completed first.
        let p = parse_program("q(X) :- Y is X + 1, r(Y). r(_).").unwrap();
        let u = vec![Term::Int(1), Term::atom("a")];
        let detailed = calibrate_detailed(
            &p,
            &[PredId::new("q", 1)],
            &u,
            &CalibrationConfig::default(),
        );
        assert!(!detailed.contains_key(&(PredId::new("q", 1), Mode::parse("+").unwrap())));
        // The free mode is illegal outright (unbound arithmetic).
        assert!(!detailed.contains_key(&(PredId::new("q", 1), Mode::parse("-").unwrap())));
    }

    #[test]
    fn interleaved_modes_measure_identically_to_isolated_runs() {
        let src = "r(X) :- f(X), g(X).
                   s(X) :- g(X), f(X).
                   f(a). f(b). f(c). g(b). g(c).";
        let p = parse_program(src).unwrap();
        let u = universe(&["a", "b", "c"]);
        let config = CalibrationConfig::default();
        let together = calibrate_detailed(
            &p,
            &[
                PredId::new("r", 1),
                PredId::new("s", 1),
                PredId::new("f", 1),
            ],
            &u,
            &config,
        );
        for pred in ["r", "s", "f"] {
            let alone = calibrate_detailed(&p, &[PredId::new(pred, 1)], &u, &config);
            for (key, m) in alone {
                assert_eq!(
                    together.get(&key),
                    Some(&m),
                    "{key:?} must measure the same interleaved and isolated"
                );
            }
        }
    }

    #[test]
    fn sampling_respects_the_budget() {
        let u: Vec<Term> = (0..50).map(Term::Int).collect();
        let qs = sample_queries_each(
            PredId::new("big", 2).name,
            &Mode::parse("++").unwrap(),
            &[&u, &u],
            64,
        );
        assert_eq!(qs.len(), 64); // 2500 combinations sampled down to 64
    }

    #[test]
    fn argument_domains_follow_variable_links_and_stay_typed() {
        let p = parse_program(
            "dept(sales). dept(hr).
             emp(e1). emp(e2). emp(e3).
             works(e1, sales). works(e2, hr). works(e3, hr).
             staff(E) :- emp(E), works(E, _D).
             where(E, D) :- works(E, D), dept(D).",
        )
        .unwrap();
        let domains = ArgDomains::infer(&p, 16);
        let fallback = universe(&["zzz"]);
        let names = |pred: &str, arity: usize, pos: usize| -> Vec<String> {
            domains
                .universe(PredId::new(pred, arity), pos, &fallback)
                .iter()
                .map(|t| t.to_string())
                .collect()
        };
        // staff/1's argument is linked to emp/1 and works/2 position 0:
        // employees only, no departments.
        assert_eq!(names("staff", 1, 0), ["e1", "e2", "e3"]);
        // where/2 keeps its positions apart: employees left, depts right.
        assert_eq!(names("where", 2, 0), ["e1", "e2", "e3"]);
        assert_eq!(names("where", 2, 1), ["sales", "hr"]);
        // A predicate the program never constrains falls back.
        assert_eq!(
            domains.universe(PredId::new("ghost", 1), 0, &fallback),
            &fallback[..]
        );
    }

    #[test]
    fn universe_harvest_is_deterministic_and_capped() {
        let p = parse_program("f(a). f(b). g(a, 3). h(X) :- f(X). g(c, 4).").unwrap();
        let u = harvest_universe(&p, 10);
        let names: Vec<String> = u.iter().map(|t| t.to_string()).collect();
        assert_eq!(names, ["a", "b", "3", "c", "4"]);
        assert_eq!(harvest_universe(&p, 2).len(), 2);
    }
}
