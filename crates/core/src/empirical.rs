//! Empirical cost calibration — the paper's "extended Warren's method"
//! (§I-E).
//!
//! "We call each predicate, forcing repeated backtracking, and count the
//! solution-tuples." The paper used this before the Markov model and
//! notes it is expensive but effective; here it is an optional calibration
//! pass: measured per-mode costs and solution counts are fed to the
//! reorderer as overrides, replacing the static estimates for exactly the
//! predicates that were measured. The ablation harness compares static
//! vs. calibrated reordering quality.

use crate::costs::solutions_to_p;
use prolog_analysis::{Mode, ModeItem};
use prolog_engine::{Engine, MachineConfig};
use prolog_markov::GoalStats;
use prolog_syntax::{PredId, SourceProgram, Term};
use std::collections::HashMap;

/// Limits for the calibration runs.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Sample at most this many bound-argument combinations per mode.
    pub max_queries_per_mode: usize,
    /// Abort a runaway query after this many calls (the measurement is
    /// then discarded — the paper's method cannot measure divergent
    /// modes either).
    pub max_calls_per_query: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            max_queries_per_mode: 64,
            max_calls_per_query: 1_000_000,
        }
    }
}

/// Measured statistics for `(predicate, mode)` pairs.
pub type MeasuredCosts = HashMap<(PredId, Mode), GoalStats>;

/// Runs every `+`/`-` mode of every listed predicate against the real
/// engine, measuring mean predicate calls and mean solution counts.
///
/// `universe` supplies the constants substituted into `+` positions.
pub fn calibrate(
    program: &SourceProgram,
    preds: &[PredId],
    universe: &[Term],
    config: &CalibrationConfig,
) -> MeasuredCosts {
    let mut engine = Engine::with_config(MachineConfig {
        max_calls: config.max_calls_per_query,
        unknown_fails: true,
        ..Default::default()
    });
    engine.load(program);

    let mut out = MeasuredCosts::new();
    for &pred in preds {
        for mode in Mode::enumerate_plus_minus(pred.arity) {
            let queries = sample_queries(pred, &mode, universe, config.max_queries_per_mode);
            if queries.is_empty() {
                continue;
            }
            let mut total_calls = 0u64;
            let mut total_solutions = 0usize;
            let mut measured = 0usize;
            for goal in &queries {
                let nvars = goal.variables().len();
                let names: Vec<String> = (0..nvars).map(|i| format!("V{i}")).collect();
                match engine.query_term(goal, &names, usize::MAX) {
                    Ok(outcome) => {
                        total_calls += outcome.counters.user_calls;
                        total_solutions += outcome.solutions.len();
                        measured += 1;
                    }
                    Err(_) => {
                        // divergent or illegal in this mode: skip the mode
                        measured = 0;
                        break;
                    }
                }
            }
            if measured == 0 {
                continue;
            }
            let mean_cost = (total_calls as f64 / measured as f64).max(1.0);
            let mean_solutions = total_solutions as f64 / measured as f64;
            out.insert(
                (pred, mode),
                GoalStats::new(solutions_to_p(mean_solutions), mean_cost),
            );
        }
    }
    out
}

/// Builds up to `max` query terms for a mode: the cartesian product over
/// `+` positions, sampled with a fixed stride when it exceeds the budget.
fn sample_queries(pred: PredId, mode: &Mode, universe: &[Term], max: usize) -> Vec<Term> {
    let bound: Vec<usize> = mode
        .items()
        .iter()
        .enumerate()
        .filter(|(_, m)| **m == ModeItem::Plus)
        .map(|(i, _)| i)
        .collect();
    let n = universe.len().max(1);
    let total: usize = n.checked_pow(bound.len() as u32).unwrap_or(usize::MAX);
    let take = total.min(max);
    if universe.is_empty() && !bound.is_empty() {
        return Vec::new();
    }
    let stride = (total / take.max(1)).max(1);
    let mut out = Vec::with_capacity(take);
    let mut index = 0usize;
    while out.len() < take {
        let mut combo = index;
        let mut args = Vec::with_capacity(pred.arity);
        let mut var_idx = 0;
        for (i, item) in mode.items().iter().enumerate() {
            let _ = i;
            match item {
                ModeItem::Plus => {
                    args.push(universe[combo % n].clone());
                    combo /= n;
                }
                _ => {
                    args.push(Term::Var(var_idx));
                    var_idx += 1;
                }
            }
        }
        out.push(Term::struct_(pred.name, args));
        index += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn universe(names: &[&str]) -> Vec<Term> {
        names.iter().map(|n| Term::atom(n)).collect()
    }

    #[test]
    fn measures_fact_predicates_exactly() {
        let p = parse_program("f(a). f(b). f(c).").unwrap();
        let costs = calibrate(
            &p,
            &[PredId::new("f", 1)],
            &universe(&["a", "b", "c", "d"]),
            &CalibrationConfig::default(),
        );
        let free = costs[&(PredId::new("f", 1), Mode::parse("-").unwrap())];
        // one call, three solutions
        assert_eq!(free.cost, 1.0);
        assert!((crate::costs::p_to_solutions(free.p) - 3.0).abs() < 1e-9);
        let bound = costs[&(PredId::new("f", 1), Mode::parse("+").unwrap())];
        // 3 of 4 constants succeed
        assert!((crate::costs::p_to_solutions(bound.p) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn measures_rule_costs_including_descendants() {
        let p = parse_program(
            "r(X) :- f(X), g(X).
             f(a). f(b). g(b).",
        )
        .unwrap();
        let costs = calibrate(
            &p,
            &[PredId::new("r", 1)],
            &universe(&["a", "b"]),
            &CalibrationConfig::default(),
        );
        let free = costs[&(PredId::new("r", 1), Mode::parse("-").unwrap())];
        assert!(free.cost > 1.0, "rule cost includes callees: {}", free.cost);
    }

    #[test]
    fn divergent_modes_are_skipped() {
        let p = parse_program(
            "d(X, [X|Y], Y).
             d(U, [X|Y], [X|V]) :- d(U, Y, V).",
        )
        .unwrap();
        let config = CalibrationConfig {
            max_calls_per_query: 2_000,
            ..Default::default()
        };
        let costs = calibrate(&p, &[PredId::new("d", 3)], &universe(&["a"]), &config);
        // (+,-,-) diverges: must be absent
        assert!(!costs.contains_key(&(PredId::new("d", 3), Mode::parse("+--").unwrap())));
        // Whatever modes did measure belong to the requested predicate.
        assert!(costs.keys().all(|(pred, _)| *pred == PredId::new("d", 3)));
    }

    #[test]
    fn sampling_respects_the_budget() {
        let p = parse_program("big(X, Y).").unwrap();
        let _ = p;
        let u: Vec<Term> = (0..50).map(Term::Int).collect();
        let qs = sample_queries(PredId::new("big", 2), &Mode::parse("++").unwrap(), &u, 64);
        assert_eq!(qs.len(), 64); // 2500 combinations sampled down to 64
    }
}
