//! Reorderer configuration.

use prolog_syntax::PredId;

/// Which conjunction cost model drives the order search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModelKind {
    /// The paper's absorbing Markov chain (§VI): cost charged per chain
    /// visit, `Σ c_i v_i` on the all-solutions chain.
    MarkovChain,
    /// Refinement: each goal's full-enumeration cost charged once per
    /// fresh activation, `Σ c_i Π_{j<i} E_j` — avoids the chain's
    /// double-charging of redo visits. See
    /// `prolog_markov::ClauseChain::generator_cost`.
    GeneratorTree,
}

/// Tuning knobs for the reordering system.
#[derive(Debug, Clone)]
pub struct ReorderConfig {
    /// Reorder goals within clauses (§III-B).
    pub reorder_goals: bool,
    /// Reorder clauses within predicates (§III-A).
    pub reorder_clauses: bool,
    /// Emit one specialised version per legal calling mode, plus a
    /// dispatcher under the original name (§VII).
    pub specialize_modes: bool,
    /// Mobile blocks up to this many goals are permuted exhaustively;
    /// longer blocks go through best-first search (§VI-A.3 notes `n!`
    /// "can be expensive" beyond n ≈ 3; exhaustive enumeration with
    /// legality pruning stays cheap a bit further).
    pub exhaustive_threshold: usize,
    /// Hard cap on A* node expansions per block (safety valve; the search
    /// falls back to the original order when exceeded).
    pub max_search_nodes: usize,
    /// Default success-solutions estimate for recursive predicates without
    /// `:- cost(...)` declarations (the paper requires declarations;
    /// we degrade gracefully instead of refusing).
    pub default_recursive_cost: f64,
    /// Default expected number of solutions for such predicates.
    pub default_recursive_solutions: f64,
    /// Iterations of the bottom-up cost fixpoint for recursive predicates
    /// (an extension over the paper, which uses declarations only).
    pub recursive_fixpoint_iterations: usize,
    /// Conjunction cost model. `GeneratorTree` (default) is a refinement
    /// of the paper's chain that ranks orders more accurately on
    /// call-count workloads; set `MarkovChain` for the paper-faithful
    /// model (compared in the ablation harness).
    pub cost_model: CostModelKind,
    /// Worker threads for the per-`(predicate, mode)` reordering stage.
    /// `0` (default) uses the machine's available parallelism; `1` runs
    /// the serial path with no thread pool. Output is byte-identical
    /// regardless of the setting.
    pub jobs: usize,
    /// Predicates pinned to their original definition: never specialised
    /// or reordered, emitted verbatim. The calibration loop pins
    /// predicates whose specialisation *measured* worse than the input
    /// ordering (e.g. a dispatcher hop charged on every meta-call with no
    /// offsetting gain). Kept sorted so configs compare and hash
    /// deterministically.
    pub pinned: Vec<PredId>,
}

impl ReorderConfig {
    /// The effective worker count: `jobs`, with `0` resolved to the
    /// machine's available parallelism.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig {
            reorder_goals: true,
            reorder_clauses: true,
            specialize_modes: true,
            exhaustive_threshold: 6,
            max_search_nodes: 20_000,
            default_recursive_cost: 10.0,
            default_recursive_solutions: 1.0,
            recursive_fixpoint_iterations: 2,
            cost_model: CostModelKind::GeneratorTree,
            jobs: 0,
            pinned: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ReorderConfig::default();
        assert!(c.reorder_goals && c.reorder_clauses && c.specialize_modes);
        assert!(c.exhaustive_threshold >= 3);
        assert!(c.max_search_nodes > 1000);
    }
}
