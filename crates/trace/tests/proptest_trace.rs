//! Property tests for the trace invariants documented in the crate root:
//! per-thread well-nesting, per-thread timestamp monotonicity, and
//! span-id referential integrity — over real workloads (difftest-generated
//! programs pushed through the parallel reorderer and the engine), not
//! hand-picked span shapes.

use prolog_difftest::{generate_case, GenConfig};
use prolog_engine::{Engine, MachineConfig};
use prolog_trace::{disable, drain, enable, Record, Trace};
use proptest::prelude::*;
use reorder::{ReorderConfig, Reorderer};
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, MutexGuard};

/// Tracing is process-global, so property iterations must not overlap —
/// with each other or with any other test toggling the singleton.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Checks the three crate invariants over a drained trace.
fn check_invariants(trace: &Trace) {
    assert_eq!(trace.dropped, 0, "no records may be dropped in tests");

    // Referential integrity pass: every id referenced anywhere was
    // introduced by a Begin record. (Begins are flushed strictly before
    // the Ends/Instants that reference them within a thread, but drain()
    // sorts by timestamp, so collect ids up front.)
    let begun: HashSet<u64> = trace
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Begin { id, .. } => Some(*id),
            _ => None,
        })
        .collect();

    // Per-thread passes: stack discipline + nondecreasing timestamps.
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    for record in &trace.records {
        let tid = record.tid();
        let ts = record.ts_us();
        let prev = last_ts.entry(tid).or_insert(0);
        assert!(
            ts >= *prev,
            "tid {tid}: timestamp went backwards ({ts} < {prev})"
        );
        *prev = ts;

        let stack = stacks.entry(tid).or_default();
        match record {
            Record::Begin { id, parent, .. } => {
                assert_eq!(
                    *parent,
                    stack.last().copied(),
                    "tid {tid}: begin {id} parent must be the enclosing open span"
                );
                if let Some(p) = parent {
                    assert!(begun.contains(p), "tid {tid}: parent {p} never began");
                }
                stack.push(*id);
            }
            Record::End { id, name, .. } => {
                assert!(begun.contains(id), "tid {tid}: end of unknown span {id}");
                let open = stack.pop();
                assert_eq!(
                    open,
                    Some(*id),
                    "tid {tid}: end {name} ({id}) does not match innermost open span {open:?}"
                );
            }
            Record::Instant { span, .. } => {
                if let Some(s) = span {
                    assert!(begun.contains(s), "tid {tid}: instant in unknown span {s}");
                    assert!(
                        stack.contains(s),
                        "tid {tid}: instant attributed to span {s} which is not open"
                    );
                }
            }
            Record::Counter { .. } => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "tid {tid}: {} spans never ended: {stack:?}",
            stack.len()
        );
    }
}

/// One end-to-end traced workload: reorder a generated program with a
/// parallel pipeline, then run its queries on the engine (bounded).
fn traced_workload(seed: u64, jobs: usize) -> Trace {
    let case = generate_case(seed, &GenConfig::default());
    let _ = drain(); // discard leakage from whatever ran before
    enable();
    let result = Reorderer::new(
        &case.program,
        ReorderConfig {
            jobs,
            ..ReorderConfig::default()
        },
    )
    .run();
    let mut engine = Engine::with_config(MachineConfig {
        max_calls: 200_000,
        ..MachineConfig::default()
    });
    engine.load(&result.program);
    for query in &case.queries {
        // Budget overruns on adversarial generated programs are fine —
        // the trace must stay well-formed either way.
        let _ = engine.query_term(&query.goal, &query.var_names, 64);
    }
    disable();
    drain()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn traces_are_well_formed_over_generated_programs(
        seed in 0u64..1u64 << 48,
        jobs in 1usize..5,
    ) {
        let _g = guard();
        let trace = traced_workload(seed, jobs);
        prop_assert!(!trace.records.is_empty(), "a traced run must record something");
        check_invariants(&trace);
    }

    #[test]
    fn parallel_worker_spans_interleave_but_stay_nested(seed in 0u64..1u64 << 48) {
        let _g = guard();
        let trace = traced_workload(seed, 4);
        check_invariants(&trace);
        // The pipeline span and the engine query span both appear.
        let names: HashSet<&str> = trace
            .records
            .iter()
            .map(|r| match r {
                Record::Begin { name, .. }
                | Record::End { name, .. }
                | Record::Instant { name, .. }
                | Record::Counter { name, .. } => *name,
            })
            .collect();
        prop_assert!(names.contains("reorder.run"), "missing reorder.run in {names:?}");
        prop_assert!(names.contains("engine.query"), "missing engine.query in {names:?}");
    }
}

#[test]
fn instants_attribute_to_an_open_span_across_threads() {
    let _g = guard();
    let _ = drain();
    enable();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let _outer = prolog_trace::span("test.outer");
                for _ in 0..i + 1 {
                    let _inner = prolog_trace::span("test.inner");
                    prolog_trace::instant("test.tick");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    disable();
    let trace = drain();
    check_invariants(&trace);
    let tids: HashSet<u64> = trace.records.iter().map(Record::tid).collect();
    assert!(tids.len() >= 4, "expected at least 4 tids, got {tids:?}");
}
