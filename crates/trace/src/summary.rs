//! Plain-text profile summary: wall time per span name.
//!
//! The quick look that doesn't need a browser: for every span name,
//! how often it ran, total/mean/max inclusive wall time, and how much
//! of that was *self* time (inclusive minus the inclusive time of
//! direct children). Sorted by total inclusive time, descending.

use crate::{Record, Trace};
use std::collections::HashMap;
use std::fmt::Write;

#[derive(Default, Clone)]
struct NameStats {
    count: u64,
    total_us: u64,
    self_us: u64,
    max_us: u64,
}

pub fn render(trace: &Trace) -> String {
    // Reconstruct durations by matching begin/end per span id.
    struct Open {
        name: &'static str,
        start_us: u64,
        parent: Option<u64>,
        child_us: u64,
    }
    let mut open: HashMap<u64, Open> = HashMap::new();
    let mut by_name: HashMap<&'static str, NameStats> = HashMap::new();
    let mut instants: HashMap<&'static str, u64> = HashMap::new();

    for record in &trace.records {
        match record {
            Record::Begin {
                id,
                parent,
                name,
                ts_us,
                ..
            } => {
                open.insert(
                    *id,
                    Open {
                        name,
                        start_us: *ts_us,
                        parent: *parent,
                        child_us: 0,
                    },
                );
            }
            Record::End { id, ts_us, .. } => {
                let Some(span) = open.remove(id) else {
                    continue;
                };
                let dur = ts_us.saturating_sub(span.start_us);
                let stats = by_name.entry(span.name).or_default();
                stats.count += 1;
                stats.total_us += dur;
                stats.self_us += dur.saturating_sub(span.child_us);
                stats.max_us = stats.max_us.max(dur);
                if let Some(parent) = span.parent.and_then(|p| open.get_mut(&p)) {
                    parent.child_us += dur;
                }
            }
            Record::Instant { name, .. } => *instants.entry(name).or_default() += 1,
            Record::Counter { .. } => {}
        }
    }

    let mut rows: Vec<(&'static str, NameStats)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "span", "count", "total_us", "self_us", "mean_us", "max_us"
    );
    for (name, s) in &rows {
        let _ = writeln!(
            out,
            "{name:<32} {:>8} {:>12} {:>12} {:>12} {:>12}",
            s.count,
            s.total_us,
            s.self_us,
            s.total_us / s.count.max(1),
            s.max_us
        );
    }
    if !open.is_empty() {
        let _ = writeln!(out, "({} span(s) still open at drain)", open.len());
    }
    if !instants.is_empty() {
        let mut names: Vec<_> = instants.into_iter().collect();
        names.sort();
        let _ = writeln!(out, "instants:");
        for (name, n) in names {
            let _ = writeln!(out, "  {name:<30} x{n}");
        }
    }
    if trace.dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} record(s) dropped at the sink cap",
            trace.dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_excludes_children() {
        let trace = Trace {
            records: vec![
                Record::Begin {
                    id: 1,
                    parent: None,
                    tid: 1,
                    name: "outer",
                    ts_us: 0,
                    args: None,
                },
                Record::Begin {
                    id: 2,
                    parent: Some(1),
                    tid: 1,
                    name: "inner",
                    ts_us: 10,
                    args: None,
                },
                Record::End {
                    id: 2,
                    tid: 1,
                    name: "inner",
                    ts_us: 40,
                },
                Record::End {
                    id: 1,
                    tid: 1,
                    name: "outer",
                    ts_us: 100,
                },
            ],
            dropped: 0,
        };
        let text = trace.summary();
        let outer = text.lines().find(|l| l.starts_with("outer")).unwrap();
        let cols: Vec<&str> = outer.split_whitespace().collect();
        assert_eq!(cols[1], "1"); // count
        assert_eq!(cols[2], "100"); // total
        assert_eq!(cols[3], "70"); // self = 100 - 30
        let inner = text.lines().find(|l| l.starts_with("inner")).unwrap();
        let cols: Vec<&str> = inner.split_whitespace().collect();
        assert_eq!(cols[2], "30");
        assert_eq!(cols[3], "30");
    }
}
