//! Lightweight hierarchical tracing for the reordering system.
//!
//! The paper's argument is quantitative, and so is debugging the system
//! that reproduces it: knowing *where* pipeline and engine time goes is
//! what makes a slow run diagnosable (cf. Ledeniov & Markovitch on
//! measurement-driven ordering, and Adachi's point that execution
//! visibility is what makes Prolog behaviour debuggable). This crate is
//! the shared instrumentation layer:
//!
//! * **Spans** — RAII begin/end pairs on a process-wide monotonic clock,
//!   nested per thread, with optional structured arguments. Creating a
//!   span while tracing is disabled is one relaxed atomic load and **no
//!   allocation**; every instrumentation point in the reorderer, the
//!   engine, and `reordd` stays in release builds at <5% overhead.
//! * **Instants and counters** — point events attributed to the current
//!   span.
//! * **Export** — [`Trace::to_chrome_json`] emits Chrome trace-event
//!   JSON (load it in `chrome://tracing` or Perfetto), and
//!   [`Trace::summary`] renders a plain-text profile.
//! * **Structured events** — the [`fields`] module is the stable-order
//!   JSON object builder that `reorder::RunStats::to_json` (and through
//!   it the `reordd` `stats` reply) encode with, so every JSON surface
//!   of the system shares one encoder.
//!
//! Tracing is a process-wide singleton: [`enable`]/[`disable`], or the
//! `PROLOG_TRACE=1` environment variable. Threads flush their buffered
//! records into the global sink whenever their outermost span closes
//! (and on thread exit), so [`drain`] sees every completed top-level
//! span of every joined thread.
//!
//! Invariants (pinned by this crate's property tests):
//! * per thread, begin/end records are well nested (stack discipline);
//! * per thread, timestamps are monotonically nondecreasing;
//! * every span id referenced by an end, instant, or child-begin record
//!   was introduced by a begin record.

pub mod chrome;
pub mod fields;
pub mod summary;

use fields::Obj;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema version of the Chrome-trace export (`schema_version` in the
/// emitted JSON). Bump when the event shape changes.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

// Enable state: 0 = unset (consult PROLOG_TRACE), 1 = on, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Records dropped after the sink hit its cap (runaway-trace backstop).
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Sink cap: ~4M records ≈ hundreds of MB of JSON; beyond that the
/// trace is unloadable anyway.
const SINK_CAP: usize = 1 << 22;
/// Thread-local buffer flush threshold (records).
const FLUSH_AT: usize = 1024;

fn sink() -> &'static Mutex<Vec<Record>> {
    static SINK: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (monotonic clock).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Is tracing on? One relaxed atomic load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PROLOG_TRACE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    // Pin the epoch as early as possible so timestamps start near zero.
    let _ = epoch();
    on
}

/// Turns tracing on process-wide.
pub fn enable() {
    let _ = epoch();
    STATE.store(1, Ordering::Relaxed);
}

/// Turns tracing off process-wide. Already-buffered records are kept
/// until the next [`drain`].
pub fn disable() {
    STATE.store(2, Ordering::Relaxed);
}

/// One trace record. `tid` is a small per-thread ordinal (assigned at
/// first use, stable for the thread's lifetime), not the OS thread id.
#[derive(Debug, Clone)]
pub enum Record {
    Begin {
        id: u64,
        parent: Option<u64>,
        tid: u64,
        name: &'static str,
        ts_us: u64,
        args: Option<Obj>,
    },
    End {
        id: u64,
        tid: u64,
        name: &'static str,
        ts_us: u64,
    },
    Instant {
        span: Option<u64>,
        tid: u64,
        name: &'static str,
        ts_us: u64,
        args: Option<Obj>,
    },
    Counter {
        tid: u64,
        name: &'static str,
        ts_us: u64,
        value: f64,
    },
}

impl Record {
    pub fn tid(&self) -> u64 {
        match self {
            Record::Begin { tid, .. }
            | Record::End { tid, .. }
            | Record::Instant { tid, .. }
            | Record::Counter { tid, .. } => *tid,
        }
    }

    pub fn ts_us(&self) -> u64 {
        match self {
            Record::Begin { ts_us, .. }
            | Record::End { ts_us, .. }
            | Record::Instant { ts_us, .. }
            | Record::Counter { ts_us, .. } => *ts_us,
        }
    }
}

struct ThreadBuffer {
    tid: u64,
    stack: Vec<u64>,
    records: Vec<Record>,
}

impl ThreadBuffer {
    fn flush(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let mut global = sink().lock().expect("trace sink poisoned");
        let room = SINK_CAP.saturating_sub(global.len());
        if room < self.records.len() {
            DROPPED.fetch_add((self.records.len() - room) as u64, Ordering::Relaxed);
            global.extend(self.records.drain(..).take(room));
            self.records.clear();
        } else {
            global.append(&mut self.records);
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        records: Vec::new(),
    });
}

fn push_record(make: impl FnOnce(u64, Option<u64>) -> Record, pushes: Option<u64>, pops: bool) {
    BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        let parent = buf.stack.last().copied();
        let record = make(buf.tid, parent);
        buf.records.push(record);
        if let Some(id) = pushes {
            buf.stack.push(id);
        }
        if pops {
            buf.stack.pop();
        }
        // Flush at the outermost boundary (so joined threads never hold
        // completed spans back) or when the buffer grows large.
        if buf.stack.is_empty() || buf.records.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

/// RAII span: records a begin event now and the matching end event on
/// drop. The no-op variant (tracing disabled) carries no data.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    live: Option<(u64, &'static str)>,
}

impl Span {
    /// This span's id, when live — for correlating instants.
    pub fn id(&self) -> Option<u64> {
        self.live.map(|(id, _)| id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((id, name)) = self.live {
            let ts_us = now_us();
            push_record(
                |tid, _| Record::End {
                    id,
                    tid,
                    name,
                    ts_us,
                },
                None,
                true,
            );
        }
    }
}

/// Opens a span. Zero-cost (one atomic load, no allocation) when
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_impl(name, None)
}

/// Opens a span with structured arguments. `args` is only invoked when
/// tracing is enabled, so argument construction costs nothing when off.
#[inline]
pub fn span_with(name: &'static str, args: impl FnOnce() -> Obj) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    span_impl(name, Some(args()))
}

fn span_impl(name: &'static str, args: Option<Obj>) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let ts_us = now_us();
    push_record(
        |tid, parent| Record::Begin {
            id,
            parent,
            tid,
            name,
            ts_us,
            args,
        },
        Some(id),
        false,
    );
    Span {
        live: Some((id, name)),
    }
}

/// Records a point event attributed to the current span.
#[inline]
pub fn instant(name: &'static str) {
    instant_with(name, Obj::new)
}

/// Point event with structured arguments (built only when enabled).
#[inline]
pub fn instant_with(name: &'static str, args: impl FnOnce() -> Obj) {
    if !enabled() {
        return;
    }
    let args = args();
    let ts_us = now_us();
    push_record(
        move |tid, parent| Record::Instant {
            span: parent,
            tid,
            name,
            ts_us,
            args: Some(args),
        },
        None,
        false,
    );
}

/// Records a counter sample (rendered as a track in chrome://tracing).
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    push_record(
        move |tid, _| Record::Counter {
            tid,
            name,
            ts_us,
            value,
        },
        None,
        false,
    );
}

/// A drained set of trace records, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub records: Vec<Record>,
    /// Records lost to the sink cap (0 in any sane run).
    pub dropped: u64,
}

impl Trace {
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Chrome trace-event JSON — see [`chrome`].
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Plain-text profile summary — see [`summary`].
    pub fn summary(&self) -> String {
        summary::render(self)
    }
}

/// Takes every record flushed so far (current thread's buffer included)
/// and resets the sink. Records from *other threads'* open spans remain
/// buffered there until their outermost span closes.
pub fn drain() -> Trace {
    BUFFER.with(|cell| cell.borrow_mut().flush());
    let mut global = sink().lock().expect("trace sink poisoned");
    let mut records = std::mem::take(&mut *global);
    drop(global);
    // Per-thread order is already chronological; a stable sort by
    // timestamp interleaves threads without breaking nesting.
    records.sort_by_key(Record::ts_us);
    Trace {
        records,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing is process-global; tests in this module serialise on the
    // same lock the integration suite uses.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = guard();
        disable();
        let _ = drain();
        {
            let outer = span("outer");
            assert!(outer.id().is_none());
            instant("nothing");
            counter("c", 1.0);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_attribute() {
        let _g = guard();
        let _ = drain();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span_with("inner", || Obj::new().u64("k", 7));
                instant("tick");
            }
            counter("depth", 1.0);
        }
        disable();
        let trace = drain();
        assert_eq!(trace.dropped, 0);
        let mut names = Vec::new();
        let mut inner_parent = None;
        let mut outer_id = None;
        for r in &trace.records {
            match r {
                Record::Begin {
                    id, parent, name, ..
                } => {
                    names.push(format!("B:{name}"));
                    if *name == "outer" {
                        outer_id = Some(*id);
                    }
                    if *name == "inner" {
                        inner_parent = *parent;
                    }
                }
                Record::End { name, .. } => names.push(format!("E:{name}")),
                Record::Instant { name, span, .. } => {
                    names.push(format!("I:{name}"));
                    assert!(span.is_some(), "instant attributes to the open span");
                }
                Record::Counter { name, .. } => names.push(format!("C:{name}")),
            }
        }
        assert_eq!(
            names,
            ["B:outer", "B:inner", "I:tick", "E:inner", "C:depth", "E:outer"]
        );
        assert_eq!(inner_parent, outer_id, "inner's parent is outer");
        // Draining again yields nothing.
        assert!(drain().is_empty());
    }

    #[test]
    fn cross_thread_records_carry_distinct_tids() {
        let _g = guard();
        let _ = drain();
        enable();
        {
            let _here = span("main.work");
        }
        std::thread::spawn(|| {
            let _there = span("worker.work");
        })
        .join()
        .unwrap();
        disable();
        let trace = drain();
        let tids: std::collections::HashSet<u64> = trace.records.iter().map(Record::tid).collect();
        assert_eq!(tids.len(), 2, "two threads, two tids: {trace:?}");
    }
}
