//! Chrome trace-event export.
//!
//! Emits the JSON Object Format of the Trace Event specification: a top
//! object with a `traceEvents` array (plus our `schema_version` and
//! `dropped` metadata — extra keys are explicitly allowed and ignored by
//! viewers). Load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Span begin/end map to `ph: "B"`/`"E"` duration events, instants to
//! `ph: "i"` (thread scope), counters to `ph: "C"`. All events share
//! `pid: 1`; `tid` is the crate's per-thread ordinal. Timestamps are
//! microseconds since the process trace epoch, exactly the unit the
//! format specifies.

use crate::fields::{write_str, write_value, Obj};
use crate::{Record, Trace, TRACE_SCHEMA_VERSION};
use std::fmt::Write as _;

/// Event category tag on every emitted event.
const CATEGORY: &str = "reorder";

pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.records.len() * 96);
    let _ = write!(
        out,
        "{{\"schema_version\":{TRACE_SCHEMA_VERSION},\"dropped\":{},\"traceEvents\":[",
        trace.dropped
    );
    for (i, record) in trace.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, record);
    }
    out.push_str("]}");
    out
}

fn write_common(out: &mut String, name: &str, ph: char, tid: u64, ts_us: u64) {
    out.push_str("{\"name\":");
    write_str(out, name);
    let _ = write!(
        out,
        ",\"cat\":\"{CATEGORY}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us}"
    );
}

fn write_args(out: &mut String, id: Option<u64>, args: Option<&Obj>) {
    let has_id = id.is_some();
    let has_args = args.map(|a| !a.is_empty()).unwrap_or(false);
    if !has_id && !has_args {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(id) = id {
        let _ = write!(out, "\"span_id\":{id}");
        first = false;
    }
    if let Some(obj) = args {
        for (key, value) in obj.fields() {
            if !first {
                out.push(',');
            }
            first = false;
            write_str(out, key);
            out.push(':');
            write_value(out, value);
        }
    }
    out.push('}');
}

fn write_event(out: &mut String, record: &Record) {
    match record {
        Record::Begin {
            id,
            parent,
            tid,
            name,
            ts_us,
            args,
        } => {
            write_common(out, name, 'B', *tid, *ts_us);
            let mut full = args.clone().unwrap_or_default();
            if let Some(p) = parent {
                full = full.u64("parent_span_id", *p);
            }
            write_args(out, Some(*id), Some(&full));
            out.push('}');
        }
        Record::End {
            id,
            tid,
            name,
            ts_us,
        } => {
            write_common(out, name, 'E', *tid, *ts_us);
            write_args(out, Some(*id), None);
            out.push('}');
        }
        Record::Instant {
            span,
            tid,
            name,
            ts_us,
            args,
        } => {
            write_common(out, name, 'i', *tid, *ts_us);
            out.push_str(",\"s\":\"t\"");
            let mut full = args.clone().unwrap_or_default();
            if let Some(span) = span {
                full = full.u64("span_id", *span);
            }
            write_args(out, None, Some(&full));
            out.push('}');
        }
        Record::Counter {
            tid,
            name,
            ts_us,
            value,
        } => {
            write_common(out, name, 'C', *tid, *ts_us);
            let _ = write!(out, ",\"args\":{{\"value\":{value}}}");
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Obj;

    #[test]
    fn export_has_the_pinned_shape() {
        let trace = Trace {
            records: vec![
                Record::Begin {
                    id: 1,
                    parent: None,
                    tid: 1,
                    name: "reorder.run",
                    ts_us: 10,
                    args: Some(Obj::new().u64("jobs", 2)),
                },
                Record::Instant {
                    span: Some(1),
                    tid: 1,
                    name: "cache.warm",
                    ts_us: 11,
                    args: None,
                },
                Record::Counter {
                    tid: 1,
                    name: "queue_depth",
                    ts_us: 12,
                    value: 3.0,
                },
                Record::End {
                    id: 1,
                    tid: 1,
                    name: "reorder.run",
                    ts_us: 20,
                },
            ],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"schema_version\":1,\"dropped\":0,\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"reorder.run\",\"cat\":\"reorder\",\"ph\":\"B\",\"pid\":1,\
             \"tid\":1,\"ts\":10,\"args\":{\"span_id\":1,\"jobs\":2}}"
        ));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.ends_with("]}"));
    }
}
