//! Structured-event fields: an ordered JSON object builder.
//!
//! Every machine-readable surface of the system — span arguments here,
//! `reorder::RunStats::to_json` (and through it the `reordd` `stats`
//! reply), the `bench-suite` trajectory writer — needs the same thing: a
//! flat JSON object with a **stable key order** and no external
//! dependencies. This module is that one encoder, so the surfaces can
//! never drift apart on escaping or number formatting.

use std::fmt::Write;

/// One field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

/// An ordered list of `(key, value)` fields; encodes as one flat JSON
/// object with keys in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Obj {
    fields: Vec<(&'static str, Value)>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj::default()
    }

    pub fn u64(mut self, key: &'static str, value: u64) -> Obj {
        self.fields.push((key, Value::U64(value)));
        self
    }

    pub fn i64(mut self, key: &'static str, value: i64) -> Obj {
        self.fields.push((key, Value::I64(value)));
        self
    }

    pub fn f64(mut self, key: &'static str, value: f64) -> Obj {
        self.fields.push((key, Value::F64(value)));
        self
    }

    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Obj {
        self.fields.push((key, Value::Str(value.into())));
        self
    }

    pub fn bool(mut self, key: &'static str, value: bool) -> Obj {
        self.fields.push((key, Value::Bool(value)));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields
    }

    /// The value of a field, if present (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Encodes as one flat JSON object, keys in insertion order.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(16 + self.fields.len() * 16);
        out.push('{');
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, key);
            out.push(':');
            write_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

pub fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf; null is the honest encoding.
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Writes `s` as a JSON string literal with full escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_in_insertion_order() {
        let obj = Obj::new()
            .u64("jobs", 4)
            .f64("ratio", 1.5)
            .str("name", "aunt/2")
            .bool("ok", true)
            .i64("delta", -3);
        assert_eq!(
            obj.encode(),
            r#"{"jobs":4,"ratio":1.5,"name":"aunt/2","ok":true,"delta":-3}"#
        );
        assert_eq!(obj.get("jobs"), Some(&Value::U64(4)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn escapes_strings_and_guards_nonfinite() {
        let obj = Obj::new().str("s", "a\"b\\c\nd\u{1}").f64("nan", f64::NAN);
        assert_eq!(
            obj.encode(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"nan\":null}"
        );
    }

    #[test]
    fn integers_encode_without_decimal_point() {
        // RunStats::to_json byte-compatibility depends on this.
        assert_eq!(Obj::new().u64("n", 0).encode(), r#"{"n":0}"#);
        assert_eq!(
            Obj::new().u64("n", u64::MAX).encode(),
            format!(r#"{{"n":{}}}"#, u64::MAX)
        );
    }
}
