//! Human-readable safety/stratification report (`--datalog-report`).

use crate::eval::Evaluation;
use crate::program::RelKind;
use crate::safety::{Certification, PredClass};
use std::fmt::Write as _;

/// Renders the certification: per-predicate class and stratum, then every
/// rejection with its diagnostic, in first-occurrence order.
pub fn render_certification(cert: &Certification) -> String {
    let mut out = String::new();
    let accepted = cert
        .order
        .iter()
        .filter(|p| cert.classes.contains_key(p))
        .count();
    let rejected = cert.rejected_preds().len();
    let _ = writeln!(
        out,
        "datalog safety: {accepted} predicate(s) certified, {rejected} rejected"
    );
    for pred in &cert.order {
        let Some(class) = cert.classes.get(pred) else {
            continue;
        };
        match class {
            PredClass::Edb => {
                let facts = cert
                    .program
                    .rel(*pred)
                    .map(|rid| cert.program.facts.iter().filter(|(r, _)| *r == rid).count())
                    .unwrap_or(0);
                let _ = writeln!(out, "  {pred}: EDB ({facts} facts, stratum 0)");
            }
            PredClass::Idb => {
                let stratum = cert
                    .program
                    .rel(*pred)
                    .map(|rid| cert.program.rels[rid].stratum)
                    .unwrap_or(0);
                let _ = writeln!(out, "  {pred}: IDB (stratum {stratum})");
            }
            PredClass::Test => {
                let _ = writeln!(out, "  {pred}: test (demand-evaluated filter)");
            }
        }
    }
    if !cert.rejections.is_empty() {
        let _ = writeln!(out, "rejected clauses:");
        for r in &cert.rejections {
            let _ = writeln!(out, "  {r}");
        }
    }
    out
}

/// Renders evaluation statistics (appended to the report after a run).
pub fn render_evaluation(eval: &Evaluation) -> String {
    let mut out = String::new();
    let s = &eval.stats;
    let _ = writeln!(out, "evaluation ({} ordering):", eval.strategy.label());
    let _ = writeln!(out, "  facts loaded:   {}", s.facts_loaded);
    let _ = writeln!(out, "  facts derived:  {}", s.facts_derived);
    let _ = writeln!(out, "  idb tuples:     {}", s.idb_tuples);
    let _ = writeln!(out, "  tuples joined:  {}", s.tuples_joined);
    let _ = writeln!(out, "  strata:         {}", s.strata);
    let _ = writeln!(out, "  rounds:         {}", s.rounds);
    let deltas: Vec<String> = s.delta_sizes.iter().map(|d| d.to_string()).collect();
    let _ = writeln!(out, "  delta sizes:    [{}]", deltas.join(", "));
    let _ = writeln!(out, "  wall time:      {} us", s.wall_us);
    for decl in &eval.program().rels {
        if decl.kind == RelKind::Idb {
            let n = eval.relation(decl.pred).map(|r| r.len()).unwrap_or(0);
            let _ = writeln!(out, "  {}: {} tuples", decl.pred, n);
        }
    }
    out
}
