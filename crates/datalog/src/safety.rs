//! The Datalog safety certifier.
//!
//! Bottom-up evaluation terminates and agrees with SLD resolution only on
//! a fragment of Prolog. This module identifies that fragment — using the
//! workspace's static analyses (call graph, recursion cliques, fixity) —
//! and lowers it to the [`crate::program`] IR, producing a precise,
//! per-clause rejection diagnostic for everything outside it:
//!
//! * **range restriction** — every head variable and every variable read
//!   by a test, negation, or arithmetic goal must be bindable by positive
//!   body literals in *some* order (the bottom-up analogue of the paper's
//!   legal-mode requirement);
//! * **no unbounded value recursion** — arithmetic inside a recursive
//!   clique (the `count/3` pattern) can derive infinitely many facts;
//!   structure building is excluded by rejecting non-ground compound
//!   arguments (function symbols);
//! * **stratified negation** — negation must not cross a recursive
//!   clique, so each relation is complete before anything negates it;
//! * **no control effects** — cut, if-then-else, and side-effecting
//!   built-ins have no bottom-up meaning and reject the clause.
//!
//! Predicates land in one of three classes: `EDB` (ground facts), `IDB`
//! (materialised by rules), or *test* — demand-evaluated filters like
//! `unequal(X, Y) :- X \== Y` or `male(X) :- not(female(X))` that are not
//! range-restricted yet are perfectly evaluable once their arguments are
//! bound. Rejections cascade: a clause calling a rejected predicate is
//! itself rejected (`depends on rejected predicate`), so the certified
//! program never references uncertified code.

use crate::interner::Interner;
use crate::order::{placement_check, PlacementFailure};
use crate::program::{
    Arg, ArithOp, CmpOp, DatalogProgram, Expr, Lit, OrdOp, RelDecl, RelKind, Rule, Stratum,
    TestClause, TestPred,
};
use prolog_analysis::ProgramAnalysis;
use prolog_syntax::{Body, Clause, PredId, SourceProgram, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Why a clause (or predicate) is outside the Datalog-safe fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    Cut,
    IfThenElse,
    ComplexNegation,
    NonAtomicArg,
    SideEffect,
    UnsupportedBuiltin(PredId),
    NonIntegerArithmetic,
    ArithmeticInRecursion,
    NotRangeRestricted(String),
    UnboundTestGoal,
    UnstratifiedNegation,
    RecursiveTestPredicate,
    DisjunctionTooWide,
    DependsOnRejected(PredId),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Cut => write!(f, "cut is not expressible in Datalog"),
            RejectReason::IfThenElse => write!(f, "if-then-else is not expressible in Datalog"),
            RejectReason::ComplexNegation => write!(f, "negation of a non-atomic goal"),
            RejectReason::NonAtomicArg => {
                write!(f, "non-ground compound argument (function symbol)")
            }
            RejectReason::SideEffect => write!(f, "side-effecting predicate"),
            RejectReason::UnsupportedBuiltin(p) => write!(f, "unsupported built-in {p}"),
            RejectReason::NonIntegerArithmetic => write!(f, "non-integer arithmetic"),
            RejectReason::ArithmeticInRecursion => {
                write!(
                    f,
                    "arithmetic in a recursive clique (unbounded value recursion)"
                )
            }
            RejectReason::NotRangeRestricted(v) => {
                write!(f, "head variable {v} is not range-restricted")
            }
            RejectReason::UnboundTestGoal => {
                write!(f, "test or negation with variables no generator can bind")
            }
            RejectReason::UnstratifiedNegation => {
                write!(f, "negation through a recursive clique (not stratifiable)")
            }
            RejectReason::RecursiveTestPredicate => write!(f, "recursive test predicate"),
            RejectReason::DisjunctionTooWide => {
                write!(
                    f,
                    "disjunction expands to more than {MAX_ALTERNATIVES} conjunctive rules"
                )
            }
            RejectReason::DependsOnRejected(p) => {
                write!(f, "depends on rejected predicate {p}")
            }
        }
    }
}

/// One rejection: a predicate, optionally a specific clause (1-based
/// ordinal among the predicate's clauses), and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    pub pred: PredId,
    pub clause: Option<usize>,
    pub reason: RejectReason,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.clause {
            Some(n) => write!(f, "{} clause {}: {}", self.pred, n, self.reason),
            None => write!(f, "{}: {}", self.pred, self.reason),
        }
    }
}

/// How a certified predicate is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredClass {
    /// Ground facts, loaded into stratum 0.
    Edb,
    /// Materialised bottom-up by rules.
    Idb,
    /// Demand-evaluated filter (never materialised).
    Test,
}

/// The result of certifying a source program: the lowered safe fragment
/// plus the classification and rejection record.
#[derive(Debug, Clone, Default)]
pub struct Certification {
    pub program: DatalogProgram,
    /// Certified predicates and their classes.
    pub classes: HashMap<PredId, PredClass>,
    /// Every predicate mentioned, in first-occurrence order (for reports).
    pub order: Vec<PredId>,
    pub rejections: Vec<Rejection>,
}

impl Certification {
    /// Is the predicate inside the certified fragment?
    pub fn is_safe(&self, pred: PredId) -> bool {
        self.classes.contains_key(&pred)
    }

    /// `true` when the whole program certified with no rejections.
    pub fn fully_safe(&self) -> bool {
        self.rejections.is_empty()
    }

    /// Rejected predicates (deduplicated, first-occurrence order).
    pub fn rejected_preds(&self) -> Vec<PredId> {
        let rejected: HashSet<PredId> = self.rejections.iter().map(|r| r.pred).collect();
        self.order
            .iter()
            .copied()
            .filter(|p| rejected.contains(p))
            .collect()
    }

    /// The first rejection recorded for a predicate, if any.
    pub fn rejection_for(&self, pred: PredId) -> Option<&Rejection> {
        self.rejections.iter().find(|r| r.pred == pred)
    }
}

const MAX_ALTERNATIVES: usize = 64;

/// A lowered rule alternative before classification.
#[derive(Debug, Clone)]
struct Alt {
    head_args: Vec<Arg>,
    body: Vec<Lit>,
    nvars: usize,
    clause_index: usize,
    /// 1-based ordinal of the source clause among its predicate's clauses.
    clause_ordinal: usize,
    conjunct_map: Option<Vec<usize>>,
    var_names: Vec<String>,
}

#[derive(Debug, Default)]
struct PredBuild {
    facts: Vec<Vec<crate::interner::ConstId>>,
    alts: Vec<Alt>,
    clause_count: usize,
    rejections: Vec<(Option<usize>, RejectReason)>,
}

/// Certifies `program`: classifies every predicate, lowers the safe
/// fragment, stratifies it, and records a diagnostic per rejected clause.
pub fn certify(program: &SourceProgram) -> Certification {
    let _span = prolog_trace::span_with("datalog.certify", || {
        prolog_trace::fields::Obj::new().u64("clauses", program.clauses.len() as u64)
    });
    let analysis = ProgramAnalysis::analyze(program);
    let mut interner = Interner::new();

    // ---- Pass 1: compile every clause, grouped by predicate. ----
    let mut order: Vec<PredId> = Vec::new();
    let mut builds: HashMap<PredId, PredBuild> = HashMap::new();
    for (clause_index, clause) in program.clauses.iter().enumerate() {
        let Some(pred) = clause.head.pred_id() else {
            continue;
        };
        if !builds.contains_key(&pred) {
            order.push(pred);
        }
        let build = builds.entry(pred).or_default();
        build.clause_count += 1;
        let ordinal = build.clause_count;
        match compile_clause(clause, clause_index, ordinal, &mut interner) {
            Ok(Compiled::Fact(tuple)) => build.facts.push(tuple),
            Ok(Compiled::Rules(alts)) => build.alts.extend(alts),
            Err(reason) => build.rejections.push((Some(ordinal), reason)),
        }
    }
    // Undefined predicates called anywhere become empty EDB relations
    // (bottom-up "unknown fails" semantics), unless they are built-ins —
    // calls to those were already rejected during compilation.
    let mut called: Vec<PredId> = Vec::new();
    for build in builds.values() {
        for alt in &build.alts {
            for lit in &alt.body {
                if let Some(p) = lit_pred(lit) {
                    called.push(p);
                }
            }
        }
    }
    for pred in called {
        if let std::collections::hash_map::Entry::Vacant(e) = builds.entry(pred) {
            e.insert(PredBuild::default());
            order.push(pred);
        }
    }

    // ---- Pass 2: predicate-level structural checks. ----
    for pred in &order {
        let build = builds.get_mut(pred).expect("build exists");
        if build.clause_count > 0 && analysis.fixity.is_fixed(*pred) && build.rejections.is_empty()
        {
            build.rejections.push((None, RejectReason::SideEffect));
            continue;
        }
        if analysis.recursion.is_recursive(*pred) {
            for alt in &build.alts {
                let has_arith = alt.body.iter().any(|l| matches!(l, Lit::Is { .. }));
                if has_arith {
                    build.rejections.push((
                        Some(alt.clause_ordinal),
                        RejectReason::ArithmeticInRecursion,
                    ));
                }
            }
        }
    }

    // ---- Pass 3: classification. ----
    let mut classes: HashMap<PredId, PredClass> = HashMap::new();
    let mut rejections: Vec<Rejection> = Vec::new();
    let mut rejected: HashSet<PredId> = HashSet::new();
    for pred in &order {
        let build = &builds[pred];
        if !build.rejections.is_empty() {
            for (clause, reason) in &build.rejections {
                rejections.push(Rejection {
                    pred: *pred,
                    clause: *clause,
                    reason: reason.clone(),
                });
            }
            rejected.insert(*pred);
            continue;
        }
        if build.alts.is_empty() {
            classes.insert(*pred, PredClass::Edb);
            continue;
        }
        match classify_rules(build) {
            Ok(class) => {
                classes.insert(*pred, class);
            }
            Err((clause, reason)) => {
                rejections.push(Rejection {
                    pred: *pred,
                    clause,
                    reason,
                });
                rejected.insert(*pred);
            }
        }
    }

    // ---- Pass 4: rewrite test-predicate references and cascade. ----
    // A `Pos` on a test predicate is really a demand call, which changes
    // placement (a call generates nothing); a cascade rejection makes
    // every dependent unsafe too. Loop to a fixpoint: the test set only
    // grows and the rejected set only grows, so this terminates.
    loop {
        let tests: HashSet<PredId> = classes
            .iter()
            .filter(|(_, c)| **c == PredClass::Test)
            .map(|(p, _)| *p)
            .collect();
        let mut newly_rejected: Vec<(PredId, Option<usize>, RejectReason)> = Vec::new();
        let mut reclassified = false;
        for pred in &order {
            if rejected.contains(pred) || !classes.contains_key(pred) {
                continue;
            }
            let build = &builds[pred];
            for alt in &build.alts {
                for lit in &alt.body {
                    if let Some(dep) = lit_pred(lit) {
                        if rejected.contains(&dep) {
                            newly_rejected.push((
                                *pred,
                                Some(alt.clause_ordinal),
                                RejectReason::DependsOnRejected(dep),
                            ));
                        }
                    }
                }
            }
        }
        // Re-check IDB placement with test references rewritten to calls:
        // a rule whose generator turned out to be a test predicate is no
        // longer range-restricted (or is itself a test).
        if newly_rejected.is_empty() {
            for pred in &order {
                if classes.get(pred) != Some(&PredClass::Idb) || rejected.contains(pred) {
                    continue;
                }
                let rewritten = PredBuild {
                    facts: builds[pred].facts.clone(),
                    alts: builds[pred]
                        .alts
                        .iter()
                        .map(|alt| Alt {
                            body: alt
                                .body
                                .iter()
                                .map(|l| rewrite_test_refs(l, &tests))
                                .collect(),
                            ..alt.clone()
                        })
                        .collect(),
                    clause_count: builds[pred].clause_count,
                    rejections: Vec::new(),
                };
                match classify_rules(&rewritten) {
                    Ok(PredClass::Idb) => {}
                    Ok(class) => {
                        classes.insert(*pred, class);
                        reclassified = true;
                    }
                    Err((clause, reason)) => {
                        newly_rejected.push((*pred, clause, reason));
                    }
                }
            }
        }
        // Stratification-level checks run once everything else is quiet.
        if newly_rejected.is_empty() && !reclassified {
            newly_rejected = stratification_rejections(&order, &builds, &classes, &tests)
                .into_iter()
                .map(|(p, r)| (p, None, r))
                .collect();
        }
        if newly_rejected.is_empty() && !reclassified {
            break;
        }
        for (pred, clause, reason) in newly_rejected {
            if rejected.insert(pred) {
                rejections.push(Rejection {
                    pred,
                    clause,
                    reason,
                });
                classes.remove(&pred);
            }
        }
    }

    // ---- Pass 5: build the certified program. ----
    let tests_set: HashSet<PredId> = classes
        .iter()
        .filter(|(_, c)| **c == PredClass::Test)
        .map(|(p, _)| *p)
        .collect();
    let strata_of = stratify(&order, &builds, &classes, &tests_set)
        .expect("stratification verified during cascade");
    let mut dl = DatalogProgram {
        interner,
        ..DatalogProgram::default()
    };
    // Relations: certified EDB + IDB predicates, first-occurrence order.
    for pred in &order {
        match classes.get(pred) {
            Some(PredClass::Edb) => {
                let rel = dl.rels.len();
                dl.rels.push(RelDecl {
                    pred: *pred,
                    kind: RelKind::Edb,
                    stratum: 0,
                });
                dl.rel_of.insert(*pred, rel);
            }
            Some(PredClass::Idb) => {
                let rel = dl.rels.len();
                dl.rels.push(RelDecl {
                    pred: *pred,
                    kind: RelKind::Idb,
                    stratum: strata_of[pred],
                });
                dl.rel_of.insert(*pred, rel);
            }
            _ => {}
        }
    }
    // Facts (EDB tuples and ground IDB fact clauses).
    for pred in &order {
        if let Some(&rel) = dl.rel_of.get(pred) {
            for tuple in &builds[pred].facts {
                dl.facts.push((rel, tuple.clone()));
            }
        }
    }
    // Rules, with test references rewritten to calls.
    for pred in &order {
        if classes.get(pred) != Some(&PredClass::Idb) {
            continue;
        }
        for alt in &builds[pred].alts {
            let body: Vec<Lit> = alt
                .body
                .iter()
                .map(|l| rewrite_test_refs(l, &tests_set))
                .collect();
            dl.rules.push(Rule {
                head: *pred,
                head_args: alt.head_args.clone(),
                body,
                nvars: alt.nvars,
                clause_index: alt.clause_index,
                conjunct_map: alt.conjunct_map.clone(),
            });
        }
    }
    // Test predicates.
    for pred in &order {
        if classes.get(pred) != Some(&PredClass::Test) {
            continue;
        }
        let clauses: Vec<TestClause> = builds[pred]
            .facts
            .iter()
            .map(|tuple| TestClause {
                params: tuple.iter().map(|c| Arg::Const(*c)).collect(),
                nvars: 0,
                body: Vec::new(),
            })
            .chain(builds[pred].alts.iter().map(|alt| {
                TestClause {
                    params: alt.head_args.clone(),
                    nvars: alt.nvars,
                    body: alt
                        .body
                        .iter()
                        .map(|l| rewrite_test_refs(l, &tests_set))
                        .collect(),
                }
            }))
            .collect();
        dl.tests.insert(
            *pred,
            TestPred {
                pred: *pred,
                clauses,
            },
        );
    }
    // Strata: stratum 0 is the EDB; IDB strata renumbered consecutively.
    let max_stratum = dl.rels.iter().map(|r| r.stratum).max().unwrap_or(0);
    dl.strata = vec![Stratum::default(); max_stratum + 1];
    for (rid, decl) in dl.rels.iter().enumerate() {
        dl.strata[decl.stratum].rels.push(rid);
    }
    for (ri, rule) in dl.rules.iter().enumerate() {
        let stratum = dl.rels[dl.rel_of[&rule.head]].stratum;
        dl.strata[stratum].rules.push(ri);
    }

    Certification {
        program: dl,
        classes,
        order,
        rejections,
    }
}

/// The stored/test predicate a literal references, if any.
fn lit_pred(lit: &Lit) -> Option<PredId> {
    match lit {
        Lit::Pos { pred, .. } | Lit::Neg { pred, .. } | Lit::Call { pred, .. } => Some(*pred),
        _ => None,
    }
}

fn rewrite_test_refs(lit: &Lit, tests: &HashSet<PredId>) -> Lit {
    match lit {
        Lit::Pos { pred, args } if tests.contains(pred) => Lit::Call {
            pred: *pred,
            args: args.clone(),
        },
        other => other.clone(),
    }
}

enum Compiled {
    Fact(Vec<crate::interner::ConstId>),
    Rules(Vec<Alt>),
}

fn compile_clause(
    clause: &Clause,
    clause_index: usize,
    clause_ordinal: usize,
    interner: &mut Interner,
) -> Result<Compiled, RejectReason> {
    let head_args_terms: &[Term] = match &clause.head {
        Term::Struct(_, args) => args,
        _ => &[],
    };
    if clause.is_fact() && clause.head.is_ground() {
        let tuple = head_args_terms.iter().map(|t| interner.intern(t)).collect();
        return Ok(Compiled::Fact(tuple));
    }
    let head_args = head_args_terms
        .iter()
        .map(|t| compile_arg(t, interner))
        .collect::<Result<Vec<_>, _>>()?;
    let nvars = clause.num_vars();

    // Pure conjunctions keep a literal-to-source-conjunct map so a chosen
    // order can be written back onto the clause; disjunctions expand.
    let alternatives = expand_body(&clause.body)?;
    if alternatives.len() > MAX_ALTERNATIVES {
        return Err(RejectReason::DisjunctionTooWide);
    }
    let pure_conjunction = alternatives.len() == 1 && !body_has_or(&clause.body);
    let mut alts = Vec::new();
    for goals in &alternatives {
        let mut body = Vec::new();
        let mut conjunct_map = Vec::new();
        for (gi, goal) in goals.iter().enumerate() {
            if let Some(lit) = compile_goal(goal, interner)? {
                body.push(lit);
                conjunct_map.push(gi);
            }
        }
        alts.push(Alt {
            head_args: head_args.clone(),
            body,
            nvars,
            clause_index,
            clause_ordinal,
            conjunct_map: pure_conjunction.then_some(conjunct_map),
            var_names: clause.var_names.clone(),
        });
    }
    Ok(Compiled::Rules(alts))
}

fn body_has_or(body: &Body) -> bool {
    match body {
        Body::Or(_, _) => true,
        Body::And(a, b) => body_has_or(a) || body_has_or(b),
        _ => false,
    }
}

/// Expands a body into its disjunction-free alternatives, each a list of
/// leaf goals. `fail` prunes an alternative; `true` contributes nothing.
fn expand_body(body: &Body) -> Result<Vec<Vec<Body>>, RejectReason> {
    match body {
        Body::True => Ok(vec![Vec::new()]),
        Body::Fail => Ok(Vec::new()),
        Body::Cut => Err(RejectReason::Cut),
        Body::IfThenElse(_, _, _) => Err(RejectReason::IfThenElse),
        Body::Not(_) | Body::Call(_) => Ok(vec![vec![body.clone()]]),
        Body::And(a, b) => {
            let left = expand_body(a)?;
            let right = expand_body(b)?;
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    let mut alt = l.clone();
                    alt.extend(r.iter().cloned());
                    out.push(alt);
                    if out.len() > MAX_ALTERNATIVES {
                        return Err(RejectReason::DisjunctionTooWide);
                    }
                }
            }
            Ok(out)
        }
        Body::Or(a, b) => {
            let mut out = expand_body(a)?;
            out.extend(expand_body(b)?);
            if out.len() > MAX_ALTERNATIVES {
                return Err(RejectReason::DisjunctionTooWide);
            }
            Ok(out)
        }
    }
}

/// Compiles one leaf goal to a literal; `None` for `true`.
fn compile_goal(goal: &Body, interner: &mut Interner) -> Result<Option<Lit>, RejectReason> {
    match goal {
        Body::True => Ok(None),
        Body::Not(inner) => match &**inner {
            Body::Call(t) => {
                let pred = t.pred_id().ok_or(RejectReason::ComplexNegation)?;
                if builtin_kind(pred) != BuiltinKind::UserPred {
                    return Err(RejectReason::ComplexNegation);
                }
                let args = call_args(t, interner)?;
                Ok(Some(Lit::Neg { pred, args }))
            }
            _ => Err(RejectReason::ComplexNegation),
        },
        Body::Call(t) => compile_call(t, interner).map(Some),
        // `expand_body` only emits `Call`/`Not` leaves (plus `True`).
        _ => Err(RejectReason::ComplexNegation),
    }
}

#[derive(PartialEq, Eq)]
enum BuiltinKind {
    UserPred,
    Supported,
    Unsupported,
}

/// Built-ins the engine knows that the Datalog fragment does not model:
/// I/O, meta-call, aggregation, type tests, and structure inspection.
const UNSUPPORTED_BUILTINS: &[(&str, usize)] = &[
    ("write", 1),
    ("print", 1),
    ("nl", 0),
    ("read", 1),
    ("get", 1),
    ("put", 1),
    ("tab", 1),
    ("call", 1),
    ("findall", 3),
    ("bagof", 3),
    ("setof", 3),
    ("assert", 1),
    ("asserta", 1),
    ("assertz", 1),
    ("retract", 1),
    ("var", 1),
    ("nonvar", 1),
    ("atom", 1),
    ("number", 1),
    ("integer", 1),
    ("atomic", 1),
    ("compound", 1),
    ("functor", 3),
    ("arg", 3),
    ("=..", 2),
    ("copy_term", 2),
    ("length", 2),
    ("between", 3),
    ("succ_or_zero", 1),
    ("halt", 0),
];

fn builtin_kind(pred: PredId) -> BuiltinKind {
    let name = pred.name.as_str();
    match (name, pred.arity) {
        ("is", 2)
        | ("<", 2)
        | ("=<", 2)
        | (">", 2)
        | (">=", 2)
        | ("=:=", 2)
        | ("=\\=", 2)
        | ("==", 2)
        | ("\\==", 2)
        | ("@<", 2)
        | ("@=<", 2)
        | ("@>", 2)
        | ("@>=", 2)
        | ("=", 2)
        | ("\\=", 2) => BuiltinKind::Supported,
        _ if UNSUPPORTED_BUILTINS.contains(&(name, pred.arity)) => BuiltinKind::Unsupported,
        _ => BuiltinKind::UserPred,
    }
}

fn compile_call(t: &Term, interner: &mut Interner) -> Result<Lit, RejectReason> {
    let pred = t.pred_id().ok_or(RejectReason::ComplexNegation)?;
    let name = pred.name.as_str();
    match builtin_kind(pred) {
        BuiltinKind::Unsupported => return Err(RejectReason::UnsupportedBuiltin(pred)),
        BuiltinKind::UserPred => {
            let args = call_args(t, interner)?;
            return Ok(Lit::Pos { pred, args });
        }
        BuiltinKind::Supported => {}
    }
    let args: &[Term] = match t {
        Term::Struct(_, args) => args,
        _ => &[],
    };
    match (name, pred.arity) {
        ("is", 2) => match &args[0] {
            Term::Var(v) => Ok(Lit::Is {
                var: *v,
                expr: compile_expr(&args[1], interner)?,
            }),
            // `3 is X + 1` style checks: compare instead of bind.
            _ => Ok(Lit::Cmp {
                op: CmpOp::ArithEq,
                lhs: compile_expr(&args[0], interner)?,
                rhs: compile_expr(&args[1], interner)?,
            }),
        },
        ("<", 2) | ("=<", 2) | (">", 2) | (">=", 2) | ("=:=", 2) | ("=\\=", 2) => {
            let op = match name {
                "<" => CmpOp::Lt,
                "=<" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                "=:=" => CmpOp::ArithEq,
                _ => CmpOp::ArithNe,
            };
            Ok(Lit::Cmp {
                op,
                lhs: compile_expr(&args[0], interner)?,
                rhs: compile_expr(&args[1], interner)?,
            })
        }
        ("==", 2) | ("\\==", 2) | ("@<", 2) | ("@=<", 2) | ("@>", 2) | ("@>=", 2) => {
            let op = match name {
                "==" => OrdOp::Eq,
                "\\==" => OrdOp::Ne,
                "@<" => OrdOp::Before,
                "@=<" => OrdOp::BeforeEq,
                "@>" => OrdOp::After,
                _ => OrdOp::AfterEq,
            };
            Ok(Lit::Ord {
                op,
                a: compile_arg(&args[0], interner)?,
                b: compile_arg(&args[1], interner)?,
            })
        }
        ("=", 2) => Ok(Lit::Unify {
            a: compile_arg(&args[0], interner)?,
            b: compile_arg(&args[1], interner)?,
        }),
        // `\=` over bound arguments is a disequality test.
        ("\\=", 2) => Ok(Lit::Ord {
            op: OrdOp::Ne,
            a: compile_arg(&args[0], interner)?,
            b: compile_arg(&args[1], interner)?,
        }),
        _ => unreachable!("supported builtin handled above"),
    }
}

fn call_args(t: &Term, interner: &mut Interner) -> Result<Vec<Arg>, RejectReason> {
    match t {
        Term::Struct(_, args) => args.iter().map(|a| compile_arg(a, interner)).collect(),
        _ => Ok(Vec::new()),
    }
}

/// A variable or a ground constant; a compound with variables inside is a
/// function symbol and leaves the fragment.
fn compile_arg(t: &Term, interner: &mut Interner) -> Result<Arg, RejectReason> {
    match t {
        Term::Var(v) => Ok(Arg::Var(*v)),
        _ if t.is_ground() => Ok(Arg::Const(interner.intern(t))),
        _ => Err(RejectReason::NonAtomicArg),
    }
}

fn compile_expr(t: &Term, interner: &mut Interner) -> Result<Expr, RejectReason> {
    match t {
        Term::Var(v) => Ok(Expr::Arg(Arg::Var(*v))),
        Term::Int(_) => Ok(Expr::Arg(Arg::Const(interner.intern(t)))),
        Term::Float(_) | Term::Atom(_) => Err(RejectReason::NonIntegerArithmetic),
        Term::Struct(f, args) => {
            let name = f.as_str();
            match (name, args.len()) {
                ("-", 1) => Ok(Expr::Neg(Box::new(compile_expr(&args[0], interner)?))),
                ("abs", 1) => Ok(Expr::Abs(Box::new(compile_expr(&args[0], interner)?))),
                ("+", 2)
                | ("-", 2)
                | ("*", 2)
                | ("//", 2)
                | ("mod", 2)
                | ("min", 2)
                | ("max", 2) => {
                    let op = match name {
                        "+" => ArithOp::Add,
                        "-" => ArithOp::Sub,
                        "*" => ArithOp::Mul,
                        "//" => ArithOp::IntDiv,
                        "mod" => ArithOp::Mod,
                        "min" => ArithOp::Min,
                        _ => ArithOp::Max,
                    };
                    Ok(Expr::Bin(
                        op,
                        Box::new(compile_expr(&args[0], interner)?),
                        Box::new(compile_expr(&args[1], interner)?),
                    ))
                }
                _ => Err(RejectReason::NonIntegerArithmetic),
            }
        }
    }
}

/// Decides IDB vs test for a predicate with rule alternatives.
fn classify_rules(build: &PredBuild) -> Result<PredClass, (Option<usize>, RejectReason)> {
    // Materialisable: every alternative is range-restricted.
    let mut first_failure: Option<(Option<usize>, RejectReason)> = None;
    let mut all_restricted = true;
    for alt in &build.alts {
        let head_vars: Vec<usize> = alt.head_args.iter().filter_map(Arg::var).collect();
        match placement_check(&alt.body, alt.nvars, &head_vars) {
            Ok(()) => {}
            Err(failure) => {
                all_restricted = false;
                if first_failure.is_none() {
                    let reason = match failure {
                        PlacementFailure::Unplaceable(_) => RejectReason::UnboundTestGoal,
                        PlacementFailure::UnboundHeadVar(v) => RejectReason::NotRangeRestricted(
                            alt.var_names
                                .get(v)
                                .cloned()
                                .unwrap_or_else(|| format!("_{v}")),
                        ),
                    };
                    first_failure = Some((Some(alt.clause_ordinal), reason));
                }
            }
        }
    }
    if all_restricted {
        return Ok(PredClass::Idb);
    }
    // Not materialisable — usable as a demand-evaluated test if every
    // rule alternative is a pure filter over its head variables.
    let test_shaped = build.alts.iter().all(|alt| {
        let head_vars: HashSet<usize> = alt.head_args.iter().filter_map(Arg::var).collect();
        alt.body.iter().all(|lit| {
            !matches!(lit, Lit::Pos { .. } | Lit::Is { .. })
                && lit.vars().iter().all(|v| head_vars.contains(v))
        })
    });
    if test_shaped {
        return Ok(PredClass::Test);
    }
    Err(first_failure.expect("a placement failure was recorded"))
}

/// Dependency edges (dep, negative?) of a certified predicate, with test
/// calls expanded to the relations they read (always negatively — a test
/// body has no generators, so its relation reads are via negation).
fn materialized_deps(
    pred: PredId,
    builds: &HashMap<PredId, PredBuild>,
    tests: &HashSet<PredId>,
) -> Result<Vec<(PredId, bool)>, RejectReason> {
    let mut out = Vec::new();
    let build = &builds[&pred];
    for alt in &build.alts {
        for lit in &alt.body {
            collect_lit_deps(lit, builds, tests, &mut Vec::new(), &mut out)?;
        }
    }
    Ok(out)
}

fn collect_lit_deps(
    lit: &Lit,
    builds: &HashMap<PredId, PredBuild>,
    tests: &HashSet<PredId>,
    visiting: &mut Vec<PredId>,
    out: &mut Vec<(PredId, bool)>,
) -> Result<(), RejectReason> {
    let (pred, negative) = match lit {
        Lit::Pos { pred, .. } | Lit::Call { pred, .. } => (*pred, false),
        Lit::Neg { pred, .. } => (*pred, true),
        _ => return Ok(()),
    };
    if tests.contains(&pred) {
        if visiting.contains(&pred) {
            return Err(RejectReason::RecursiveTestPredicate);
        }
        visiting.push(pred);
        for clause in builds[&pred].alts.iter() {
            for l in &clause.body {
                // Every relation a test reads must be complete before the
                // caller's stratum runs: treat the edge as negative.
                let mut inner = Vec::new();
                collect_lit_deps(l, builds, tests, visiting, &mut inner)?;
                out.extend(inner.into_iter().map(|(p, _)| (p, true)));
            }
        }
        visiting.pop();
        Ok(())
    } else {
        out.push((pred, negative));
        Ok(())
    }
}

/// Stratification violations (and recursive-test cycles) to reject.
fn stratification_rejections(
    order: &[PredId],
    builds: &HashMap<PredId, PredBuild>,
    classes: &HashMap<PredId, PredClass>,
    tests: &HashSet<PredId>,
) -> Vec<(PredId, RejectReason)> {
    match stratify(order, builds, classes, tests) {
        Ok(_) => Vec::new(),
        Err(preds) => preds,
    }
}

/// Computes strata for certified EDB/IDB predicates. `Err` carries the
/// predicates that violate stratified negation (or form test cycles).
fn stratify(
    order: &[PredId],
    builds: &HashMap<PredId, PredBuild>,
    classes: &HashMap<PredId, PredClass>,
    tests: &HashSet<PredId>,
) -> Result<HashMap<PredId, usize>, Vec<(PredId, RejectReason)>> {
    let nodes: Vec<PredId> = order
        .iter()
        .copied()
        .filter(|p| matches!(classes.get(p), Some(PredClass::Edb | PredClass::Idb)))
        .collect();
    let index: HashMap<PredId, usize> = nodes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); nodes.len()];
    for (i, pred) in nodes.iter().enumerate() {
        if classes.get(pred) != Some(&PredClass::Idb) {
            continue;
        }
        match materialized_deps(*pred, builds, tests) {
            Ok(deps) => {
                for (dep, neg) in deps {
                    if let Some(&j) = index.get(&dep) {
                        edges[i].push((j, neg));
                    }
                }
            }
            Err(reason) => return Err(vec![(*pred, reason)]),
        }
    }
    let sccs = tarjan_sccs(&edges);
    let mut scc_of = vec![0usize; nodes.len()];
    for (si, scc) in sccs.iter().enumerate() {
        for &n in scc {
            scc_of[n] = si;
        }
    }
    // A negative edge inside an SCC is unstratifiable negation.
    let mut bad: Vec<(PredId, RejectReason)> = Vec::new();
    for (i, outs) in edges.iter().enumerate() {
        for &(j, neg) in outs {
            if neg && scc_of[i] == scc_of[j] {
                for &n in &sccs[scc_of[i]] {
                    bad.push((nodes[n], RejectReason::UnstratifiedNegation));
                }
            }
        }
    }
    if !bad.is_empty() {
        bad.sort_by_key(|(p, _)| index[p]);
        bad.dedup_by_key(|(p, _)| *p);
        return Err(bad);
    }
    // Tarjan emits SCCs in reverse topological order (callees first), so
    // one pass assigns strata: stratum(p) = max over deps of
    // stratum(dep) + (negative ? 1 : 0); IDB floors at 1, EDB at 0.
    let mut stratum = vec![0usize; nodes.len()];
    for scc in &sccs {
        let mut s = 0;
        for &n in scc {
            if classes.get(&nodes[n]) == Some(&PredClass::Idb) {
                s = s.max(1);
            }
            for &(j, neg) in &edges[n] {
                if scc_of[j] != scc_of[n] {
                    s = s.max(stratum[j] + usize::from(neg));
                }
            }
        }
        for &n in scc {
            stratum[n] = s;
        }
    }
    Ok(nodes
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, stratum[i]))
        .collect())
}

/// Iterative Tarjan strongly-connected components; returns SCCs in
/// reverse topological order of the condensation.
fn tarjan_sccs(edges: &[Vec<(usize, bool)>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next-edge-position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while !work.is_empty() {
            let (v, ei) = *work.last().expect("non-empty work stack");
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ei < edges[v].len() {
                let (w, _) = edges[v][ei];
                work.last_mut().expect("non-empty work stack").1 += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}
