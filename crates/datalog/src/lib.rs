//! `prolog-datalog`: a bottom-up semi-naive Datalog backend with
//! reordering-aware rule-body ordering.
//!
//! The paper's Markov-chain model (Gooley & Wah 1988) orders conjunctions
//! for top-down SLD execution. The same literal-ordering problem governs
//! bottom-up evaluation — the order a rule's body is joined in decides
//! how many intermediate tuples exist — but at fact scales the SLD engine
//! cannot reach. This crate adds that evaluation-strategy axis:
//!
//! * [`safety`] certifies the Datalog-safe fragment of a program (range
//!   restriction, no unbounded value recursion, stratified negation, no
//!   control effects) with a per-clause rejection diagnostic, reusing the
//!   workspace's call-graph/recursion/fixity analyses;
//! * [`relation`] stores certified facts in interned, arena-backed
//!   relations with hash-join indexes keyed by bound-column signatures;
//! * [`eval`] runs stratified semi-naive iteration, counting tuples
//!   joined — the bottom-up analogue of the paper's call counts;
//! * [`order`] chooses each rule body's join order: `as-written`,
//!   `bound-first` (the classic Datalog heuristic, the degenerate form of
//!   the paper's model), or `chain-cost` (the paper's
//!   [`prolog_markov::ClauseChain`] generator cost over estimated
//!   relation cardinalities) — selectable per run so the
//!   heuristic-vs-model ablation is measurable in the bench trajectory.

pub mod eval;
pub mod interner;
pub mod order;
pub mod program;
pub mod relation;
pub mod report;
pub mod safety;

pub use eval::{evaluate, EvalStats, Evaluation};
pub use interner::{ConstId, Interner};
pub use order::{OrderStrategy, PlacementFailure};
pub use program::{DatalogProgram, RelKind};
pub use relation::Relation;
pub use report::{render_certification, render_evaluation};
pub use safety::{certify, Certification, PredClass, RejectReason, Rejection};
