//! Bottom-up semi-naive evaluation.
//!
//! Strata run in order; inside a stratum, round 0 evaluates every rule in
//! full, then semi-naive rounds rewrite each rule once per occurrence of
//! a same-stratum relation in its body: that occurrence reads only the
//! *delta* (the contiguous row-id range appended since the previous
//! round) while the others read the full relation. Dedup in
//! [`Relation::insert`] makes repeated derivations harmless and
//! termination follows from the finite Herbrand base the certifier
//! guarantees.
//!
//! Every rule execution is a nested-loop hash join: body literals run in
//! the order chosen by [`crate::order::choose_order`] under the selected
//! [`OrderStrategy`], positive literals probe indexes keyed by their
//! bound-column signature, and tests/negation/arithmetic filter bound
//! tuples. The `tuples_joined` statistic — index probes plus candidate
//! tuples enumerated — is the evaluator's analogue of the paper's
//! call-count metric, and is what the `datalog` trajectory ablation
//! reports.

use crate::interner::{ConstId, Interner};
use crate::order::{choose_order, LitEstimator, OrderStrategy};
use crate::program::{Arg, ArithOp, CmpOp, DatalogProgram, Expr, Lit, OrdOp, RelId, RelKind, Rule};
use crate::relation::{ColMask, Relation};
use crate::safety::Certification;
use prolog_syntax::{PredId, Term};
use std::collections::HashMap;

/// Evaluation statistics, reported into the `datalog` trajectory section.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Index probes plus candidate tuples enumerated across all joins —
    /// the bottom-up analogue of the paper's call counts.
    pub tuples_joined: u64,
    /// Distinct new facts derived by rules (excludes loaded facts).
    pub facts_derived: u64,
    /// Ground facts loaded before evaluation.
    pub facts_loaded: u64,
    /// Total tuples across materialised IDB relations when done.
    pub idb_tuples: u64,
    /// Semi-naive rounds across all strata (round 0 of each included).
    pub rounds: u64,
    /// New tuples per round, in execution order.
    pub delta_sizes: Vec<u64>,
    /// Number of strata evaluated (excluding the EDB load).
    pub strata: u64,
    /// Wall-clock time of `evaluate` in microseconds.
    pub wall_us: u64,
}

/// A finished evaluation: materialised relations plus statistics.
pub struct Evaluation {
    program: DatalogProgram,
    rels: Vec<Relation>,
    interner: Interner,
    pub strategy: OrderStrategy,
    pub stats: EvalStats,
    /// Round-0 body order chosen per rule (indexes into the rule body).
    pub rule_orders: Vec<Vec<usize>>,
}

/// How one plan step reads its data.
#[derive(Debug, Clone)]
enum Access {
    /// Non-positive literal: filter or binder.
    Filter,
    /// Positive literal with no bound columns: full scan.
    Scan { rel: RelId },
    /// Positive literal probing the index for `mask`.
    Probe { rel: RelId, mask: ColMask },
    /// The semi-naive delta occurrence: scan rows `lo..hi`.
    Delta { rel: RelId, lo: usize, hi: usize },
}

#[derive(Debug, Clone)]
struct Plan {
    order: Vec<usize>,
    access: Vec<Access>,
}

/// Estimates literal costs from the live relations (exact probe counts
/// for constant-bound columns, distinct-value division for variable-bound
/// ones). Relations still being fixed in the current stratum get a size
/// floor so an empty-so-far recursive relation is not mistaken for free.
struct RelEstimator<'a> {
    rels: &'a mut [Relation],
    rel_of: &'a HashMap<PredId, RelId>,
    incomplete: &'a [bool],
}

const INCOMPLETE_FLOOR: usize = 16;

impl RelEstimator<'_> {
    fn pos_stats(&mut self, pred: PredId, args: &[Arg], bound: &[bool]) -> (f64, f64) {
        let Some(&rid) = self.rel_of.get(&pred) else {
            return (1.0, 1e-3); // unknown predicate: empty relation
        };
        let rel = &mut self.rels[rid];
        let mut n = rel.len();
        if self.incomplete[rid] {
            n = n.max(INCOMPLETE_FLOOR);
        }
        let mut const_mask: ColMask = 0;
        let mut const_key: Vec<ConstId> = Vec::new();
        let mut var_cols: Vec<usize> = Vec::new();
        for (col, arg) in args.iter().enumerate() {
            match arg {
                Arg::Const(c) => {
                    const_mask |= 1 << col;
                    const_key.push(*c);
                }
                Arg::Var(v) if bound[*v] => var_cols.push(col),
                Arg::Var(_) => {}
            }
        }
        if const_mask == 0 && var_cols.is_empty() {
            return (1.0 + n as f64, n as f64);
        }
        let mut est = if const_mask != 0 {
            let exact = rel.probe_count(const_mask, &const_key) as f64;
            if self.incomplete[rid] && !rel.is_empty() {
                exact * (n as f64 / rel.len() as f64)
            } else if rel.is_empty() {
                n as f64
            } else {
                exact
            }
        } else {
            n as f64
        };
        for col in var_cols {
            est /= rel.distinct_in_col(col).max(1) as f64;
        }
        let est = est.max(1e-3);
        (1.0 + est, est)
    }
}

impl LitEstimator for RelEstimator<'_> {
    fn stats(&mut self, lit: &Lit, bound: &[bool]) -> (f64, f64) {
        match lit {
            Lit::Pos { pred, args } => self.pos_stats(*pred, args, bound),
            Lit::Neg { .. } => (1.0, 0.8),
            Lit::Call { .. } => (1.0, 0.5),
            Lit::Is { .. } => (1.0, 1.0),
            Lit::Unify { a, b } => {
                let known = |arg: &Arg| match arg {
                    Arg::Const(_) => true,
                    Arg::Var(v) => bound[*v],
                };
                if known(a) && known(b) {
                    (1.0, 0.5)
                } else {
                    (1.0, 1.0)
                }
            }
            Lit::Cmp { .. } => (1.0, 0.5),
            Lit::Ord { op, .. } => match op {
                OrdOp::Eq => (1.0, 0.1),
                OrdOp::Ne => (1.0, 0.9),
                _ => (1.0, 0.5),
            },
        }
    }
}

/// Evaluates the certified program under one ordering strategy.
pub fn evaluate(cert: &Certification, strategy: OrderStrategy) -> Evaluation {
    let start = std::time::Instant::now();
    let program = cert.program.clone();
    let _span = prolog_trace::span_with("datalog.eval", || {
        prolog_trace::fields::Obj::new()
            .str("strategy", strategy.label().to_string())
            .u64("relations", program.rels.len() as u64)
            .u64("rules", program.rules.len() as u64)
    });
    let mut rels: Vec<Relation> = program
        .rels
        .iter()
        .map(|decl| Relation::new(decl.pred.arity))
        .collect();
    let mut interner = program.interner.clone();
    let mut stats = EvalStats::default();

    // Load ground facts (EDB tuples and ground IDB fact clauses).
    for (rid, tuple) in &program.facts {
        if rels[*rid].insert(tuple) {
            stats.facts_loaded += 1;
        }
    }

    let mut rule_orders: Vec<Vec<usize>> = vec![Vec::new(); program.rules.len()];

    for (si, stratum) in program.strata.iter().enumerate().skip(1) {
        let _sspan = prolog_trace::span_with("datalog.stratum", || {
            prolog_trace::fields::Obj::new()
                .u64("stratum", si as u64)
                .u64("rules", stratum.rules.len() as u64)
        });
        let mut incomplete = vec![false; rels.len()];
        for &rid in &stratum.rels {
            incomplete[rid] = true;
        }

        // Round 0: full evaluation of every rule in the stratum.
        stats.rounds += 1;
        let mut round_new = 0u64;
        for &ri in &stratum.rules {
            let rule = &program.rules[ri];
            let plan = make_plan(
                rule,
                None,
                strategy,
                &mut rels,
                &program.rel_of,
                &incomplete,
            );
            rule_orders[ri] = plan.order.clone();
            round_new += run_rule(rule, &plan, &mut rels, &mut interner, &program, &mut stats);
        }
        prolog_trace::instant_with("datalog.delta", || {
            prolog_trace::fields::Obj::new()
                .u64("stratum", si as u64)
                .u64("round", 0)
                .u64("new_tuples", round_new)
        });
        stats.delta_sizes.push(round_new);

        // Delta ranges cover facts plus round-0 derivations.
        let mut delta: HashMap<RelId, (usize, usize)> = stratum
            .rels
            .iter()
            .map(|&rid| (rid, (0, rels[rid].len())))
            .collect();
        // The same-stratum positive occurrences of each rule.
        let occurrences: Vec<(usize, Vec<usize>)> = stratum
            .rules
            .iter()
            .map(|&ri| {
                let rule = &program.rules[ri];
                let occs = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, lit)| {
                        lit.rel_pred()
                            .and_then(|p| program.rel_of.get(&p))
                            .is_some_and(|rid| {
                                matches!(lit, Lit::Pos { .. }) && delta.contains_key(rid)
                            })
                    })
                    .map(|(i, _)| i)
                    .collect();
                (ri, occs)
            })
            .collect();

        let mut delta_plans: HashMap<(usize, usize), Plan> = HashMap::new();
        let mut round = 0u64;
        loop {
            if delta.values().all(|(lo, hi)| lo == hi) {
                break;
            }
            round += 1;
            stats.rounds += 1;
            let marks: HashMap<RelId, usize> = delta.keys().map(|&r| (r, rels[r].len())).collect();
            let mut new_this_round = 0u64;
            for (ri, occs) in &occurrences {
                let rule = &program.rules[*ri];
                for &occ in occs {
                    let occ_pred = rule.body[occ]
                        .rel_pred()
                        .expect("occurrence is a positive relation literal");
                    let rid = program.rel_of[&occ_pred];
                    let (lo, hi) = delta[&rid];
                    if lo == hi {
                        continue;
                    }
                    let plan = delta_plans.entry((*ri, occ)).or_insert_with(|| {
                        make_plan(
                            rule,
                            Some(occ),
                            strategy,
                            &mut rels,
                            &program.rel_of,
                            &incomplete,
                        )
                    });
                    // Re-point the delta window at this round's range.
                    let mut plan = plan.clone();
                    for access in plan.access.iter_mut() {
                        if let Access::Delta {
                            rel,
                            lo: plo,
                            hi: phi,
                        } = access
                        {
                            *plo = lo;
                            *phi = hi;
                            debug_assert_eq!(*rel, rid);
                        }
                    }
                    new_this_round +=
                        run_rule(rule, &plan, &mut rels, &mut interner, &program, &mut stats);
                }
            }
            for (rid, range) in delta.iter_mut() {
                *range = (marks[rid], rels[*rid].len());
            }
            let si_u = si as u64;
            prolog_trace::instant_with("datalog.delta", || {
                prolog_trace::fields::Obj::new()
                    .u64("stratum", si_u)
                    .u64("round", round)
                    .u64("new_tuples", new_this_round)
            });
            stats.delta_sizes.push(new_this_round);
        }
        stats.strata += 1;
    }

    stats.idb_tuples = program
        .rels
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == RelKind::Idb)
        .map(|(rid, _)| rels[rid].len() as u64)
        .sum();
    stats.wall_us = start.elapsed().as_micros() as u64;
    Evaluation {
        program,
        rels,
        interner,
        strategy,
        stats,
        rule_orders,
    }
}

/// Chooses an order and precomputes per-step access for one rule.
fn make_plan(
    rule: &Rule,
    delta_occ: Option<usize>,
    strategy: OrderStrategy,
    rels: &mut [Relation],
    rel_of: &HashMap<PredId, RelId>,
    incomplete: &[bool],
) -> Plan {
    let initial_bound = vec![false; rule.nvars.max(1)];
    let mut est = RelEstimator {
        rels,
        rel_of,
        incomplete,
    };
    let order = choose_order(&rule.body, &initial_bound, strategy, &mut est, delta_occ);

    // Static bound-set evolution gives each positive literal its probe
    // signature; build the indexes now so execution never mutates.
    let mut bound = initial_bound;
    let mut access = Vec::with_capacity(order.len());
    for (pos, &li) in order.iter().enumerate() {
        let lit = &rule.body[li];
        let a = match lit {
            Lit::Pos { pred, args } => {
                let rid = rel_of
                    .get(pred)
                    .copied()
                    .expect("certified positive literal has a relation");
                if delta_occ == Some(li) {
                    debug_assert_eq!(pos, 0, "delta occurrence leads its join");
                    Access::Delta {
                        rel: rid,
                        lo: 0,
                        hi: 0,
                    }
                } else {
                    let mut mask: ColMask = 0;
                    for (col, arg) in args.iter().enumerate() {
                        let is_bound = match arg {
                            Arg::Const(_) => true,
                            Arg::Var(v) => bound[*v],
                        };
                        if is_bound {
                            mask |= 1 << col;
                        }
                    }
                    if mask == 0 {
                        Access::Scan { rel: rid }
                    } else {
                        rels[rid].ensure_index(mask);
                        Access::Probe { rel: rid, mask }
                    }
                }
            }
            _ => Access::Filter,
        };
        for v in lit.bound_vars() {
            bound[v] = true;
        }
        access.push(a);
    }
    Plan { order, access }
}

/// Executes one rule under one plan; returns the number of new tuples.
fn run_rule(
    rule: &Rule,
    plan: &Plan,
    rels: &mut [Relation],
    interner: &mut Interner,
    program: &DatalogProgram,
    stats: &mut EvalStats,
) -> u64 {
    let mut bindings: Vec<Option<ConstId>> = vec![None; rule.nvars.max(1)];
    let mut derived: Vec<Vec<ConstId>> = Vec::new();
    join_step(
        rule,
        plan,
        0,
        rels,
        interner,
        program,
        stats,
        &mut bindings,
        &mut derived,
    );
    let head_rid = program.rel_of[&rule.head];
    let mut new = 0u64;
    for tuple in derived {
        if rels[head_rid].insert(&tuple) {
            new += 1;
        }
    }
    stats.facts_derived += new;
    new
}

#[allow(clippy::too_many_arguments)]
fn join_step(
    rule: &Rule,
    plan: &Plan,
    depth: usize,
    rels: &[Relation],
    interner: &mut Interner,
    program: &DatalogProgram,
    stats: &mut EvalStats,
    bindings: &mut Vec<Option<ConstId>>,
    derived: &mut Vec<Vec<ConstId>>,
) {
    if depth == plan.order.len() {
        let tuple: Vec<ConstId> = rule
            .head_args
            .iter()
            .map(|arg| resolve(arg, bindings).expect("head variable bound by certification"))
            .collect();
        derived.push(tuple);
        return;
    }
    let li = plan.order[depth];
    let lit = &rule.body[li];
    match &plan.access[depth] {
        Access::Filter => {
            let mut trail = Vec::new();
            if eval_filter(lit, rels, interner, program, stats, bindings, &mut trail) {
                join_step(
                    rule,
                    plan,
                    depth + 1,
                    rels,
                    interner,
                    program,
                    stats,
                    bindings,
                    derived,
                );
            }
            for v in trail {
                bindings[v] = None;
            }
        }
        Access::Scan { rel } => {
            stats.tuples_joined += 1;
            let r = &rels[*rel];
            for row_id in 0..r.len() {
                try_row(
                    rule,
                    plan,
                    depth,
                    lit,
                    r.row(row_id),
                    rels,
                    interner,
                    program,
                    stats,
                    bindings,
                    derived,
                );
            }
        }
        Access::Delta { rel, lo, hi } => {
            stats.tuples_joined += 1;
            let r = &rels[*rel];
            for row_id in *lo..*hi {
                try_row(
                    rule,
                    plan,
                    depth,
                    lit,
                    r.row(row_id),
                    rels,
                    interner,
                    program,
                    stats,
                    bindings,
                    derived,
                );
            }
        }
        Access::Probe { rel, mask } => {
            stats.tuples_joined += 1;
            let args = match lit {
                Lit::Pos { args, .. } => args,
                _ => unreachable!("probe access on a positive literal"),
            };
            let mut key = Vec::with_capacity(mask.count_ones() as usize);
            for (col, arg) in args.iter().enumerate() {
                if mask & (1 << col) != 0 {
                    key.push(resolve(arg, bindings).expect("masked column is bound"));
                }
            }
            let r = &rels[*rel];
            for &row_id in r.probe(*mask, &key) {
                try_row(
                    rule,
                    plan,
                    depth,
                    lit,
                    r.row(row_id as usize),
                    rels,
                    interner,
                    program,
                    stats,
                    bindings,
                    derived,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_row(
    rule: &Rule,
    plan: &Plan,
    depth: usize,
    lit: &Lit,
    row: &[ConstId],
    rels: &[Relation],
    interner: &mut Interner,
    program: &DatalogProgram,
    stats: &mut EvalStats,
    bindings: &mut Vec<Option<ConstId>>,
    derived: &mut Vec<Vec<ConstId>>,
) {
    stats.tuples_joined += 1;
    let args = match lit {
        Lit::Pos { args, .. } => args,
        _ => unreachable!("row access on a positive literal"),
    };
    let mut trail = Vec::new();
    if match_tuple(args, row, bindings, &mut trail) {
        join_step(
            rule,
            plan,
            depth + 1,
            rels,
            interner,
            program,
            stats,
            bindings,
            derived,
        );
    }
    for v in trail {
        bindings[v] = None;
    }
}

fn resolve(arg: &Arg, bindings: &[Option<ConstId>]) -> Option<ConstId> {
    match arg {
        Arg::Const(c) => Some(*c),
        Arg::Var(v) => bindings[*v],
    }
}

/// Matches a tuple against literal arguments, binding free variables
/// (recording them on `trail`) and checking bound ones.
fn match_tuple(
    args: &[Arg],
    row: &[ConstId],
    bindings: &mut [Option<ConstId>],
    trail: &mut Vec<usize>,
) -> bool {
    for (arg, value) in args.iter().zip(row.iter()) {
        match arg {
            Arg::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Arg::Var(v) => match bindings[*v] {
                Some(bound) => {
                    if bound != *value {
                        return false;
                    }
                }
                None => {
                    bindings[*v] = Some(*value);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

/// Evaluates a non-generating literal; may bind via `is`/`=` (trailed).
fn eval_filter(
    lit: &Lit,
    rels: &[Relation],
    interner: &mut Interner,
    program: &DatalogProgram,
    stats: &mut EvalStats,
    bindings: &mut [Option<ConstId>],
    trail: &mut Vec<usize>,
) -> bool {
    match lit {
        Lit::Pos { .. } => unreachable!("positive literals have scan/probe access"),
        Lit::Neg { pred, args } => {
            stats.tuples_joined += 1;
            let vals: Vec<ConstId> = args
                .iter()
                .map(|a| resolve(a, bindings).expect("negation runs fully bound"))
                .collect();
            if program.tests.contains_key(pred) {
                !eval_test(*pred, &vals, rels, interner, program, stats)
            } else if let Some(&rid) = program.rel_of.get(pred) {
                !rels[rid].contains(&vals)
            } else {
                true // unknown predicate: \+ p succeeds
            }
        }
        Lit::Call { pred, args } => {
            stats.tuples_joined += 1;
            let vals: Vec<ConstId> = args
                .iter()
                .map(|a| resolve(a, bindings).expect("test call runs fully bound"))
                .collect();
            eval_test(*pred, &vals, rels, interner, program, stats)
        }
        Lit::Is { var, expr } => match eval_expr(expr, bindings, interner) {
            Some(n) => {
                let id = interner.intern_int(n);
                match bindings[*var] {
                    Some(bound) => bound == id,
                    None => {
                        bindings[*var] = Some(id);
                        trail.push(*var);
                        true
                    }
                }
            }
            None => false,
        },
        Lit::Unify { a, b } => match (resolve(a, bindings), resolve(b, bindings)) {
            (Some(x), Some(y)) => x == y,
            (Some(x), None) => {
                let v = b.var().expect("unbound side is a variable");
                bindings[v] = Some(x);
                trail.push(v);
                true
            }
            (None, Some(y)) => {
                let v = a.var().expect("unbound side is a variable");
                bindings[v] = Some(y);
                trail.push(v);
                true
            }
            (None, None) => false,
        },
        Lit::Cmp { op, lhs, rhs } => {
            let (Some(l), Some(r)) = (
                eval_expr(lhs, bindings, interner),
                eval_expr(rhs, bindings, interner),
            ) else {
                return false;
            };
            match op {
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
                CmpOp::ArithEq => l == r,
                CmpOp::ArithNe => l != r,
            }
        }
        Lit::Ord { op, a, b } => {
            let (Some(x), Some(y)) = (resolve(a, bindings), resolve(b, bindings)) else {
                return false;
            };
            let ord = interner.compare(x, y);
            match op {
                OrdOp::Eq => ord == std::cmp::Ordering::Equal,
                OrdOp::Ne => ord != std::cmp::Ordering::Equal,
                OrdOp::Before => ord == std::cmp::Ordering::Less,
                OrdOp::BeforeEq => ord != std::cmp::Ordering::Greater,
                OrdOp::After => ord == std::cmp::Ordering::Greater,
                OrdOp::AfterEq => ord != std::cmp::Ordering::Less,
            }
        }
    }
}

/// Runs a demand-evaluated test predicate over ground values.
fn eval_test(
    pred: PredId,
    vals: &[ConstId],
    rels: &[Relation],
    interner: &mut Interner,
    program: &DatalogProgram,
    stats: &mut EvalStats,
) -> bool {
    let test = &program.tests[&pred];
    'clauses: for clause in &test.clauses {
        let mut bindings: Vec<Option<ConstId>> = vec![None; clause.nvars.max(1)];
        for (param, value) in clause.params.iter().zip(vals.iter()) {
            match param {
                Arg::Const(c) => {
                    if c != value {
                        continue 'clauses;
                    }
                }
                Arg::Var(v) => match bindings[*v] {
                    Some(bound) => {
                        if bound != *value {
                            continue 'clauses;
                        }
                    }
                    None => bindings[*v] = Some(*value),
                },
            }
        }
        let mut trail = Vec::new();
        let ok = clause.body.iter().all(|lit| {
            eval_filter(
                lit,
                rels,
                interner,
                program,
                stats,
                &mut bindings,
                &mut trail,
            )
        });
        if ok {
            return true;
        }
    }
    false
}

fn eval_expr(expr: &Expr, bindings: &[Option<ConstId>], interner: &Interner) -> Option<i64> {
    match expr {
        Expr::Arg(arg) => {
            let id = resolve(arg, bindings)?;
            interner.as_int(id)
        }
        Expr::Neg(e) => eval_expr(e, bindings, interner)?.checked_neg(),
        Expr::Abs(e) => eval_expr(e, bindings, interner)?.checked_abs(),
        Expr::Bin(op, a, b) => {
            let a = eval_expr(a, bindings, interner)?;
            let b = eval_expr(b, bindings, interner)?;
            match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
                ArithOp::IntDiv => a.checked_div(b),
                ArithOp::Mod => a.checked_rem(b),
                ArithOp::Min => Some(a.min(b)),
                ArithOp::Max => Some(a.max(b)),
            }
        }
    }
}

impl Evaluation {
    /// The materialised relation behind a predicate, if it has one.
    pub fn relation(&self, pred: PredId) -> Option<&Relation> {
        self.program.rel(pred).map(|rid| &self.rels[rid])
    }

    /// Runs a query goal against the materialised program. Returns the
    /// deduplicated, sorted solution strings (set semantics), formatted
    /// identically to [`prolog_engine`'s] solution display — or `None` if
    /// the goal's predicate is outside the certified fragment or (for
    /// test predicates) not ground.
    pub fn query(&self, goal: &Term, var_names: &[String]) -> Option<Vec<String>> {
        let pred = goal.pred_id()?;
        let args: Vec<Term> = match goal {
            Term::Struct(_, a) => a.to_vec(),
            _ => Vec::new(),
        };
        let reported: Vec<(usize, String)> = var_names
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.starts_with('_'))
            .map(|(i, n)| (i, n.clone()))
            .collect();

        if let Some(rid) = self.program.rel(pred) {
            // Compile query args: a variable or an interned constant; a
            // constant the program never mentions matches nothing.
            let mut pattern: Vec<Result<usize, Option<ConstId>>> = Vec::new();
            for a in &args {
                match a {
                    Term::Var(v) => pattern.push(Ok(*v)),
                    t if t.is_ground() => pattern.push(Err(self.lookup(t))),
                    _ => return None, // non-ground compound argument
                }
            }
            let rel = &self.rels[rid];
            let mut out: Vec<String> = Vec::new();
            'rows: for i in 0..rel.len() {
                let row = rel.row(i);
                let mut bindings: Vec<Option<ConstId>> = vec![None; var_names.len().max(1)];
                for (pat, value) in pattern.iter().zip(row.iter()) {
                    match pat {
                        Err(Some(c)) => {
                            if c != value {
                                continue 'rows;
                            }
                        }
                        Err(None) => continue 'rows,
                        Ok(v) => match bindings[*v] {
                            Some(bound) => {
                                if bound != *value {
                                    continue 'rows;
                                }
                            }
                            None => bindings[*v] = Some(*value),
                        },
                    }
                }
                out.push(self.render_solution(&reported, &bindings));
            }
            out.sort();
            out.dedup();
            return Some(out);
        }
        if self.program.tests.contains_key(&pred) {
            // Tests are only queryable fully ground (demand evaluation).
            let mut vals = Vec::new();
            for a in &args {
                if !a.is_ground() {
                    return None;
                }
                match self.lookup(a) {
                    Some(c) => vals.push(c),
                    None => return Some(Vec::new()),
                }
            }
            let mut interner = self.interner.clone();
            let mut stats = EvalStats::default();
            let ok = eval_test(
                pred,
                &vals,
                &self.rels,
                &mut interner,
                &self.program,
                &mut stats,
            );
            return Some(if ok {
                vec!["true".to_string()]
            } else {
                Vec::new()
            });
        }
        None
    }

    fn lookup(&self, term: &Term) -> Option<ConstId> {
        self.interner.lookup(term)
    }

    fn render_solution(
        &self,
        reported: &[(usize, String)],
        bindings: &[Option<ConstId>],
    ) -> String {
        if reported.is_empty() {
            return "true".to_string();
        }
        let parts: Vec<String> = reported
            .iter()
            .map(|(i, name)| {
                let term = bindings[*i]
                    .map(|c| self.interner.term(c).to_string())
                    .unwrap_or_else(|| "_".to_string());
                format!("{name} = {term}")
            })
            .collect();
        parts.join(", ")
    }

    /// Order-independent fingerprint over all IDB relations; equal across
    /// evaluations iff they materialised the same tuple sets.
    pub fn idb_fingerprint(&self) -> u64 {
        let mut acc: u64 = 0;
        for (rid, decl) in self.program.rels.iter().enumerate() {
            if decl.kind == RelKind::Idb {
                acc = acc
                    .rotate_left(9)
                    .wrapping_add(self.rels[rid].fingerprint(&self.interner));
            }
        }
        acc
    }

    pub fn program(&self) -> &DatalogProgram {
        &self.program
    }
}
