//! Ground-term interning.
//!
//! Bottom-up evaluation materialises relations holding millions of tuples;
//! storing `Term`s directly would mean deep comparisons on every duplicate
//! check and index probe. Instead every ground term that appears in a fact,
//! a rule constant, or a derived tuple is interned once and relations hold
//! dense `ConstId`s (`u32`), so tuple equality is word comparison and
//! hash-join keys are flat integer slices.
//!
//! `Term` deliberately does not implement `Hash`/`Eq` (it contains floats),
//! so the intern table is keyed by the term's canonical display string —
//! which is exactly the equality the engine's solution strings use, keeping
//! cross-backend comparison honest.

use prolog_syntax::Term;
use std::collections::HashMap;

/// Identifier of an interned ground term.
pub type ConstId = u32;

/// An append-only table of ground terms, keyed by display syntax.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    by_text: HashMap<String, ConstId>,
    /// Content hash of each term's display text. Evaluations under
    /// different body orders intern derived values in different orders, so
    /// ids are not comparable across runs — these hashes are, and they are
    /// what relation fingerprints are built from.
    hashes: Vec<u64>,
}

/// FNV-1a over bytes; stable across platforms and runs.
fn text_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a ground term, returning its id. The caller must ensure
    /// `term` is ground; variables would alias by display name.
    pub fn intern(&mut self, term: &Term) -> ConstId {
        debug_assert!(term.is_ground(), "interner only stores ground terms");
        let text = term.to_string();
        if let Some(&id) = self.by_text.get(&text) {
            return id;
        }
        let id = self.terms.len() as ConstId;
        self.terms.push(term.clone());
        self.hashes.push(text_hash(&text));
        self.by_text.insert(text, id);
        id
    }

    /// An order-independent content hash for the term behind `id` —
    /// comparable across interners built in different insertion orders.
    pub fn content_hash(&self, id: ConstId) -> u64 {
        self.hashes[id as usize]
    }

    /// Interns an integer without building a transient `Term` string twice.
    pub fn intern_int(&mut self, n: i64) -> ConstId {
        self.intern(&Term::Int(n))
    }

    /// Looks up a ground term without interning it (for query-side
    /// constants: a term the program never mentions matches nothing).
    pub fn lookup(&self, term: &Term) -> Option<ConstId> {
        self.by_text.get(&term.to_string()).copied()
    }

    /// The term behind an id.
    pub fn term(&self, id: ConstId) -> &Term {
        &self.terms[id as usize]
    }

    /// The integer value of an id, if it names an integer.
    pub fn as_int(&self, id: ConstId) -> Option<i64> {
        match self.term(id) {
            Term::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Standard order of terms (`@<` family) on interned ids.
    pub fn compare(&self, a: ConstId, b: ConstId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        self.term(a).compare(self.term(b))
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let mut i = Interner::new();
        let a = i.intern(&Term::atom("alice"));
        let b = i.intern(&Term::atom("bob"));
        let a2 = i.intern(&Term::atom("alice"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.term(b).to_string(), "bob");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn compound_ground_terms_intern_structurally() {
        let mut i = Interner::new();
        let t1 = Term::app("pair", vec![Term::Int(1), Term::atom("x")]);
        let t2 = Term::app("pair", vec![Term::Int(1), Term::atom("x")]);
        assert_eq!(i.intern(&t1), i.intern(&t2));
    }

    #[test]
    fn integer_round_trip_and_order() {
        let mut i = Interner::new();
        let three = i.intern_int(3);
        let seven = i.intern_int(7);
        assert_eq!(i.as_int(three), Some(3));
        assert_eq!(i.as_int(seven), Some(7));
        assert_eq!(i.compare(three, seven), std::cmp::Ordering::Less);
        let x = i.intern(&Term::atom("x"));
        assert_eq!(i.as_int(x), None);
    }
}
