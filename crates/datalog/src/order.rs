//! Rule-body literal ordering.
//!
//! Bottom-up joins face the same conjunct-ordering problem the paper
//! solves for top-down SLD resolution: the number of intermediate tuples a
//! rule generates depends on the order its body literals are joined in.
//! Three strategies are selectable per evaluation so the ablation in the
//! `datalog` trajectory section is measurable:
//!
//! * [`OrderStrategy::AsWritten`] — first eligible literal in source
//!   order; the baseline.
//! * [`OrderStrategy::BoundFirst`] — the classic Datalog "bound variables
//!   first" heuristic (the degenerate form of the paper's model): among
//!   eligible literals pick the one with the most already-bound variables,
//!   ties broken by source position.
//! * [`OrderStrategy::ChainCost`] — the paper's Markov-chain cost model,
//!   reused from `prolog_markov`: each literal becomes a [`GoalStats`]
//!   whose cost and success odds come from estimated relation
//!   cardinalities, and candidate orders are scored with
//!   [`ClauseChain::generator_cost`] — the expected number of goal
//!   activations to enumerate every solution, which for joins is the
//!   expected tuple count. Feasible orders are enumerated exhaustively
//!   (with branch-and-bound pruning) for the small rule bodies Datalog
//!   programs have, falling back to a greedy walk past a search budget.
//!
//! Eligibility is the bottom-up analogue of the paper's legal-mode
//! constraint: tests, negation, and arithmetic may only run once their
//! variables are bound; only positive relation literals generate bindings.

use crate::program::{Arg, Lit};
use prolog_markov::{ClauseChain, GoalStats};

/// Body-ordering strategy, selectable per evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderStrategy {
    /// Source order (first eligible literal wins).
    AsWritten,
    /// Most bound variables first — the cheap heuristic.
    BoundFirst,
    /// Markov chain costs over estimated cardinalities — the refined one.
    #[default]
    ChainCost,
}

impl OrderStrategy {
    pub fn label(&self) -> &'static str {
        match self {
            OrderStrategy::AsWritten => "as-written",
            OrderStrategy::BoundFirst => "bound-first",
            OrderStrategy::ChainCost => "chain-cost",
        }
    }

    pub fn parse(s: &str) -> Option<OrderStrategy> {
        match s {
            "as-written" => Some(OrderStrategy::AsWritten),
            "bound-first" => Some(OrderStrategy::BoundFirst),
            "chain-cost" => Some(OrderStrategy::ChainCost),
            _ => None,
        }
    }
}

/// Estimates the execution profile of one literal given the current bound
/// set: `(cost, fanout)` — expected work to run it once and expected
/// number of successes. Implemented by the evaluator over live relations.
pub trait LitEstimator {
    fn stats(&mut self, lit: &Lit, bound: &[bool]) -> (f64, f64);
}

/// May `lit` run with `bound` variables bound? Positive literals always
/// can (they generate); `=`/2 needs one side bound; everything else needs
/// every variable it reads.
pub fn eligible(lit: &Lit, bound: &[bool]) -> bool {
    match lit {
        Lit::Pos { .. } => true,
        Lit::Unify { a, b } => {
            let side = |arg: &Arg| match arg {
                Arg::Const(_) => true,
                Arg::Var(v) => bound[*v],
            };
            side(a) || side(b)
        }
        _ => lit.required_vars().iter().all(|v| bound[*v]),
    }
}

fn mark_bound(lit: &Lit, bound: &mut [bool]) {
    for v in lit.bound_vars() {
        bound[v] = true;
    }
}

/// Why a body admits no feasible placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementFailure {
    /// No order can make this literal's variables bound before it runs.
    Unplaceable(usize),
    /// Every literal placed, but a head variable is never bound.
    UnboundHeadVar(usize),
}

/// Range-restriction / placement feasibility: is there *some* order in
/// which every literal is eligible when reached, and are all head
/// variables bound afterwards? (Greedy placement is complete here because
/// placing a literal never shrinks the bound set.)
pub fn placement_check(
    body: &[Lit],
    nvars: usize,
    head_vars: &[usize],
) -> Result<(), PlacementFailure> {
    let mut bound = vec![false; nvars];
    let mut placed = vec![false; body.len()];
    let mut remaining = body.len();
    while remaining > 0 {
        let mut progressed = false;
        for (i, lit) in body.iter().enumerate() {
            if !placed[i] && eligible(lit, &bound) {
                placed[i] = true;
                remaining -= 1;
                mark_bound(lit, &mut bound);
                progressed = true;
            }
        }
        if !progressed {
            let stuck = placed.iter().position(|p| !p).expect("unplaced literal");
            return Err(PlacementFailure::Unplaceable(stuck));
        }
    }
    if let Some(v) = head_vars.iter().find(|v| !bound[**v]) {
        return Err(PlacementFailure::UnboundHeadVar(*v));
    }
    Ok(())
}

/// Search budget for exhaustive chain-cost enumeration; beyond this many
/// explored orders the planner degrades to a greedy walk.
const CHAIN_SEARCH_BUDGET: usize = 50_000;

/// Chooses an execution order (indexes into `body`) for one rule body.
///
/// `first` optionally forces a literal to run first — semi-naive delta
/// occurrences must lead their join. `initial_bound` carries variables
/// already bound (none, for a plain rule). The returned order always
/// contains every literal exactly once and is feasible (certification
/// guarantees a feasible order exists).
pub fn choose_order(
    body: &[Lit],
    initial_bound: &[bool],
    strategy: OrderStrategy,
    est: &mut dyn LitEstimator,
    first: Option<usize>,
) -> Vec<usize> {
    let mut bound = initial_bound.to_vec();
    let mut order = Vec::with_capacity(body.len());
    let mut placed = vec![false; body.len()];
    if let Some(f) = first {
        order.push(f);
        placed[f] = true;
        mark_bound(&body[f], &mut bound);
    }
    match strategy {
        OrderStrategy::AsWritten => {
            greedy(body, &mut bound, &mut placed, &mut order, |_, _| 0.0);
        }
        OrderStrategy::BoundFirst => {
            // Maximising bound-variable count == minimising its negation;
            // constants do not count as bound variables.
            greedy(body, &mut bound, &mut placed, &mut order, |lit, bound| {
                let n = lit.vars().iter().filter(|v| bound[**v]).count();
                -(n as f64)
            });
        }
        OrderStrategy::ChainCost => {
            chain_cost_order(body, &mut bound, &mut placed, &mut order, est);
        }
    }
    debug_assert_eq!(order.len(), body.len());
    order
}

/// Greedy placement: repeatedly take the eligible literal minimising
/// `score`, ties broken by source position.
fn greedy(
    body: &[Lit],
    bound: &mut [bool],
    placed: &mut [bool],
    order: &mut Vec<usize>,
    mut score: impl FnMut(&Lit, &[bool]) -> f64,
) {
    while order.len() < body.len() {
        let mut best: Option<(f64, usize)> = None;
        for (i, lit) in body.iter().enumerate() {
            if placed[i] || !eligible(lit, bound) {
                continue;
            }
            let s = score(lit, bound);
            if best.is_none_or(|(bs, _)| s < bs) {
                best = Some((s, i));
            }
        }
        let (_, pick) = best.expect("certified body must stay placeable");
        placed[pick] = true;
        order.push(pick);
        mark_bound(&body[pick], bound);
    }
}

/// Clamp a fanout the way [`GoalStats`] clamps probabilities, so the
/// incremental pruning bound agrees with the final `ClauseChain` score.
fn clamp_fanout(f: f64) -> f64 {
    let p = (f / (1.0 + f)).clamp(1e-6, 1.0 - 1e-6);
    p / (1.0 - p)
}

/// Converts an estimated `(cost, fanout)` into the paper's per-goal
/// statistics: success odds `p/q = fanout` makes
/// [`ClauseChain::generator_cost`] the expected tuples-joined count.
fn goal_stats(cost: f64, fanout: f64) -> GoalStats {
    let p = (fanout / (1.0 + fanout)).clamp(1e-6, 1.0 - 1e-6);
    GoalStats::new(p, cost.max(1e-6))
}

struct ChainSearch<'a> {
    body: &'a [Lit],
    est: &'a mut dyn LitEstimator,
    best_cost: f64,
    best_order: Option<Vec<usize>>,
    explored: usize,
}

fn chain_cost_order(
    body: &[Lit],
    bound: &mut [bool],
    placed: &mut [bool],
    order: &mut Vec<usize>,
    est: &mut dyn LitEstimator,
) {
    // Score the forced prefix so pruning and final scores are comparable.
    let mut prefix_stats: Vec<GoalStats> = Vec::new();
    let mut prefix_cost = 0.0;
    let mut prefix_activ = 1.0;
    {
        let mut pre = vec![false; bound.len()];
        for &i in order.iter() {
            let (c, f) = est.stats(&body[i], &pre);
            prefix_stats.push(goal_stats(c, f));
            prefix_cost += prefix_activ * c.max(1e-6);
            prefix_activ *= clamp_fanout(f);
            mark_bound(&body[i], &mut pre);
        }
    }
    let mut search = ChainSearch {
        body,
        est,
        best_cost: f64::INFINITY,
        best_order: None,
        explored: 0,
    };
    let mut suffix = Vec::new();
    let mut stats = prefix_stats.clone();
    dfs(
        &mut search,
        bound,
        placed,
        &mut suffix,
        &mut stats,
        prefix_cost,
        prefix_activ,
    );
    if let Some(best) = search.best_order {
        order.extend(best);
    } else {
        // Search budget exhausted before any complete order: degrade to a
        // greedy most-selective-first walk.
        let est = search.est;
        greedy(body, bound, placed, order, |lit, bound| {
            let (_, fanout) = est.stats(lit, bound);
            fanout
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    search: &mut ChainSearch,
    bound: &mut [bool],
    placed: &mut [bool],
    suffix: &mut Vec<usize>,
    stats: &mut Vec<GoalStats>,
    cost_so_far: f64,
    activ: f64,
) {
    if search.explored > CHAIN_SEARCH_BUDGET {
        return;
    }
    if placed.iter().all(|p| *p) {
        search.explored += 1;
        // The official score comes from the markov chain model; the
        // incremental `cost_so_far` is its algebraic lower bound used for
        // pruning along the way.
        let chain = ClauseChain::new(stats);
        let total = chain.generator_cost();
        if total < search.best_cost {
            search.best_cost = total;
            search.best_order = Some(suffix.clone());
        }
        return;
    }
    for i in 0..search.body.len() {
        if placed[i] || !eligible(&search.body[i], bound) {
            continue;
        }
        let (c, f) = search.est.stats(&search.body[i], bound);
        let step_cost = cost_so_far + activ * c.max(1e-6);
        if step_cost >= search.best_cost {
            continue; // costs only grow along a path
        }
        let saved_bound = bound.to_vec();
        placed[i] = true;
        suffix.push(i);
        stats.push(goal_stats(c, f));
        mark_bound(&search.body[i], bound);
        dfs(
            search,
            bound,
            placed,
            suffix,
            stats,
            step_cost,
            activ * clamp_fanout(f),
        );
        stats.pop();
        suffix.pop();
        placed[i] = false;
        bound.copy_from_slice(&saved_bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::PredId;

    fn pos(name: &str, vars: &[usize]) -> Lit {
        Lit::Pos {
            pred: PredId::new(name, vars.len()),
            args: vars.iter().map(|v| Arg::Var(*v)).collect(),
        }
    }

    fn ord_ne(a: usize, b: usize) -> Lit {
        Lit::Ord {
            op: crate::program::OrdOp::Ne,
            a: Arg::Var(a),
            b: Arg::Var(b),
        }
    }

    struct Fixed(Vec<(f64, f64)>);
    impl LitEstimator for Fixed {
        fn stats(&mut self, lit: &Lit, _bound: &[bool]) -> (f64, f64) {
            match lit {
                Lit::Pos { pred, .. } => {
                    let i = pred.arity; // encode index via arity in tests
                    self.0[i]
                }
                _ => (1.0, 0.5),
            }
        }
    }

    #[test]
    fn placement_rejects_unbindable_test() {
        // p(X) :- X \== a.  -- nothing binds X.
        let body = vec![Lit::Ord {
            op: crate::program::OrdOp::Ne,
            a: Arg::Var(0),
            b: Arg::Const(0),
        }];
        assert_eq!(
            placement_check(&body, 1, &[0]),
            Err(PlacementFailure::Unplaceable(0))
        );
    }

    #[test]
    fn placement_rejects_unbound_head_var() {
        // p(X, Y) :- q(X).
        let body = vec![pos("q", &[0])];
        assert_eq!(
            placement_check(&body, 2, &[0, 1]),
            Err(PlacementFailure::UnboundHeadVar(1))
        );
    }

    #[test]
    fn placement_accepts_any_feasible_order() {
        // p(X, Y) :- X \== Y, q(X), r(Y).  -- test written first is fine.
        let body = vec![ord_ne(0, 1), pos("q", &[0]), pos("r", &[1])];
        assert_eq!(placement_check(&body, 2, &[0, 1]), Ok(()));
    }

    #[test]
    fn bound_first_prefers_literals_over_bound_vars() {
        // body: q(X, Y), r(Y, Z), s(X)   after placing q, r has 1 bound
        // var and so does s; tie falls to r (earlier position).
        let body = vec![
            Lit::Pos {
                pred: PredId::new("q", 2),
                args: vec![Arg::Var(0), Arg::Var(1)],
            },
            Lit::Pos {
                pred: PredId::new("r", 2),
                args: vec![Arg::Var(1), Arg::Var(2)],
            },
            Lit::Pos {
                pred: PredId::new("s", 1),
                args: vec![Arg::Var(0)],
            },
        ];
        let mut est = Fixed(vec![(1.0, 1.0); 3]);
        let order = choose_order(
            &body,
            &[false; 3],
            OrderStrategy::BoundFirst,
            &mut est,
            None,
        );
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn chain_cost_picks_the_selective_generator_first() {
        // Arity encodes the estimator row: lit with arity 1 is tiny (2
        // rows), arity 2 is huge (1000 rows). Chain cost must start tiny.
        let body = vec![
            Lit::Pos {
                pred: PredId::new("big", 2),
                args: vec![Arg::Var(0), Arg::Var(1)],
            },
            Lit::Pos {
                pred: PredId::new("small", 1),
                args: vec![Arg::Var(0)],
            },
        ];
        let mut est = Fixed(vec![(0.0, 0.0), (3.0, 2.0), (1001.0, 1000.0)]);
        let order = choose_order(&body, &[false; 2], OrderStrategy::ChainCost, &mut est, None);
        assert_eq!(order, vec![1, 0]);
        // The as-written baseline keeps source order.
        let order = choose_order(&body, &[false; 2], OrderStrategy::AsWritten, &mut est, None);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn forced_first_literal_leads_the_order() {
        let body = vec![pos("q", &[0]), pos("r", &[0])];
        let mut est = Fixed(vec![(1.0, 1.0); 3]);
        let order = choose_order(
            &body,
            &[false; 1],
            OrderStrategy::ChainCost,
            &mut est,
            Some(1),
        );
        assert_eq!(order[0], 1);
        assert_eq!(order.len(), 2);
    }
}
