//! The certified Datalog intermediate representation.
//!
//! The safety certifier (see [`crate::safety`]) lowers the Datalog-safe
//! fragment of a Prolog program into this IR: relations (stored EDB facts
//! and materialised IDB predicates), rules whose bodies are flat literal
//! lists, and *test predicates* — demand-evaluated filters such as
//! `unequal(X, Y) :- X \== Y` whose clauses contain no generators and
//! therefore never need materialising.

use crate::interner::ConstId;
use prolog_syntax::PredId;
use std::collections::HashMap;

/// Identifier of a relation in a [`DatalogProgram`].
pub type RelId = usize;

/// A rule argument: a clause-local variable or an interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    Var(usize),
    Const(ConstId),
}

impl Arg {
    pub fn var(&self) -> Option<usize> {
        match self {
            Arg::Var(v) => Some(*v),
            Arg::Const(_) => None,
        }
    }
}

/// Arithmetic operators supported in the safe fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    IntDiv,
    Mod,
    Min,
    Max,
}

/// An integer arithmetic expression.
#[derive(Debug, Clone)]
pub enum Expr {
    Arg(Arg),
    Neg(Box<Expr>),
    Abs(Box<Expr>),
    Bin(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Arg(Arg::Var(v)) => out.push(*v),
            Expr::Arg(Arg::Const(_)) => {}
            Expr::Neg(e) | Expr::Abs(e) => e.collect_vars(out),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// Arithmetic comparison operators (`<`, `=<`, `>`, `>=`, `=:=`, `=\=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    ArithEq,
    ArithNe,
}

/// Structural comparison operators (`==`, `\==`, `@<`, `@=<`, `@>`, `@>=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrdOp {
    Eq,
    Ne,
    Before,
    BeforeEq,
    After,
    AfterEq,
}

/// One body literal of a lowered rule.
#[derive(Debug, Clone)]
pub enum Lit {
    /// A positive occurrence of a stored relation — the only generator.
    Pos { pred: PredId, args: Vec<Arg> },
    /// Negation as failure over a stored relation; all variables must be
    /// bound before it runs (stratification places the relation below).
    Neg { pred: PredId, args: Vec<Arg> },
    /// A call to a demand-evaluated test predicate; all variables bound.
    Call { pred: PredId, args: Vec<Arg> },
    /// `Var is Expr`.
    Is { var: usize, expr: Expr },
    /// `A = B` where at least one side is bound at placement time.
    Unify { a: Arg, b: Arg },
    /// Arithmetic comparison over bound expressions.
    Cmp { op: CmpOp, lhs: Expr, rhs: Expr },
    /// Standard-order comparison over bound arguments.
    Ord { op: OrdOp, a: Arg, b: Arg },
}

impl Lit {
    /// Variables this literal mentions anywhere.
    pub fn vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            Lit::Pos { args, .. } | Lit::Neg { args, .. } | Lit::Call { args, .. } => {
                out.extend(args.iter().filter_map(Arg::var));
            }
            Lit::Is { var, expr } => {
                out.push(*var);
                expr.collect_vars(&mut out);
            }
            Lit::Unify { a, b } => {
                out.extend(a.var());
                out.extend(b.var());
            }
            Lit::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(&mut out);
                rhs.collect_vars(&mut out);
            }
            Lit::Ord { a, b, .. } => {
                out.extend(a.var());
                out.extend(b.var());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Variables that must already be bound for this literal to run.
    /// `Pos` needs none (it generates); `Unify` needs at least one side,
    /// which the placement rule in [`crate::order`] handles specially.
    pub fn required_vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            Lit::Pos { .. } | Lit::Unify { .. } => {}
            Lit::Neg { args, .. } | Lit::Call { args, .. } => {
                out.extend(args.iter().filter_map(Arg::var));
            }
            Lit::Is { expr, .. } => expr.collect_vars(&mut out),
            Lit::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(&mut out);
                rhs.collect_vars(&mut out);
            }
            Lit::Ord { a, b, .. } => {
                out.extend(a.var());
                out.extend(b.var());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Variables this literal binds when it succeeds.
    pub fn bound_vars(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            Lit::Pos { args, .. } => out.extend(args.iter().filter_map(Arg::var)),
            Lit::Is { var, .. } => out.push(*var),
            Lit::Unify { a, b } => {
                out.extend(a.var());
                out.extend(b.var());
            }
            _ => {}
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The stored relation this literal reads, if any.
    pub fn rel_pred(&self) -> Option<PredId> {
        match self {
            Lit::Pos { pred, .. } | Lit::Neg { pred, .. } => Some(*pred),
            _ => None,
        }
    }
}

/// Whether a relation is stored facts (EDB) or materialised rules (IDB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    Edb,
    Idb,
}

/// Declaration of one stored relation.
#[derive(Debug, Clone)]
pub struct RelDecl {
    pub pred: PredId,
    pub kind: RelKind,
    /// Stratum number: 0 for EDB, `>= 1` for IDB; negation from stratum
    /// `s` only reaches relations with stratum `< s`.
    pub stratum: usize,
}

/// A lowered rule.
#[derive(Debug, Clone)]
pub struct Rule {
    pub head: PredId,
    pub head_args: Vec<Arg>,
    pub body: Vec<Lit>,
    /// Number of clause-local variables.
    pub nvars: usize,
    /// Index of the originating clause in the source program.
    pub clause_index: usize,
    /// For clauses whose body was a pure conjunction: the index of the
    /// source conjunct each body literal came from, so a chosen literal
    /// order can be mapped back onto the source clause for emission.
    /// `None` when the clause went through disjunction expansion.
    pub conjunct_map: Option<Vec<usize>>,
}

/// One clause of a test predicate: head argument patterns plus filter
/// literals over the head variables only.
#[derive(Debug, Clone)]
pub struct TestClause {
    pub params: Vec<Arg>,
    pub nvars: usize,
    pub body: Vec<Lit>,
}

/// A demand-evaluated filter predicate.
#[derive(Debug, Clone)]
pub struct TestPred {
    pub pred: PredId,
    pub clauses: Vec<TestClause>,
}

/// One evaluation stratum: the relations fixed in it and the rules that
/// derive them (rule indexes into [`DatalogProgram::rules`]).
#[derive(Debug, Clone, Default)]
pub struct Stratum {
    pub rels: Vec<RelId>,
    pub rules: Vec<usize>,
}

/// A certified bottom-up program: the Datalog-safe fragment of its source.
#[derive(Debug, Clone, Default)]
pub struct DatalogProgram {
    pub rels: Vec<RelDecl>,
    pub rel_of: HashMap<PredId, RelId>,
    /// Ground facts (EDB tuples and ground IDB fact clauses).
    pub facts: Vec<(RelId, Vec<ConstId>)>,
    pub rules: Vec<Rule>,
    /// Strata in evaluation order; stratum 0 is the EDB load.
    pub strata: Vec<Stratum>,
    pub tests: HashMap<PredId, TestPred>,
    /// Interner holding every constant referenced by facts and rules.
    pub interner: crate::interner::Interner,
}

impl DatalogProgram {
    pub fn rel(&self, pred: PredId) -> Option<RelId> {
        self.rel_of.get(&pred).copied()
    }

    pub fn num_edb_facts(&self) -> usize {
        self.facts
            .iter()
            .filter(|(r, _)| self.rels[*r].kind == RelKind::Edb)
            .count()
    }
}
