//! Arena-backed fact relations with hash-join indexes.
//!
//! A relation stores its tuples row-major in one flat `Vec<ConstId>` —
//! the arena — plus a dedup set (bottom-up evaluation has set semantics)
//! and lazily-built hash indexes keyed by *bound-column signatures*: the
//! bitmask of columns a join probe has values for. Inserting a tuple
//! updates every index already built, so semi-naive deltas (contiguous
//! row-id ranges at the arena tail) never invalidate an index.

use crate::interner::{ConstId, Interner};
use std::collections::{HashMap, HashSet};

/// Bitmask over a relation's columns (bit `i` set = column `i` bound).
pub type ColMask = u32;

/// One stored relation.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    arity: usize,
    /// Row-major tuple arena: row `i` is `rows[i*arity .. (i+1)*arity]`.
    rows: Vec<ConstId>,
    num_rows: usize,
    seen: HashSet<Box<[ConstId]>>,
    /// Per-signature hash-join index: probe key (the bound columns, in
    /// ascending column order) to matching row ids.
    indexes: HashMap<ColMask, HashMap<Box<[ConstId]>, Vec<u32>>>,
    /// Per-column distinct values, for join-cardinality estimation.
    distinct: Vec<HashSet<ConstId>>,
}

impl Relation {
    pub fn new(arity: usize) -> Relation {
        assert!(arity <= 32, "relation arity limited to 32 columns");
        Relation {
            arity,
            distinct: vec![HashSet::new(); arity],
            ..Relation::default()
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.num_rows
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    pub fn row(&self, i: usize) -> &[ConstId] {
        &self.rows[i * self.arity..(i + 1) * self.arity]
    }

    pub fn contains(&self, tuple: &[ConstId]) -> bool {
        self.seen.contains(tuple)
    }

    /// Inserts a tuple; returns `true` if it was new. Every index already
    /// built on this relation is updated in place.
    pub fn insert(&mut self, tuple: &[ConstId]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if !self.seen.insert(tuple.into()) {
            return false;
        }
        let row_id = self.num_rows as u32;
        self.rows.extend_from_slice(tuple);
        self.num_rows += 1;
        for (col, set) in self.distinct.iter_mut().enumerate() {
            set.insert(tuple[col]);
        }
        for (mask, index) in self.indexes.iter_mut() {
            let key = mask_key(*mask, tuple);
            index.entry(key).or_default().push(row_id);
        }
        true
    }

    /// Number of distinct values in a column.
    pub fn distinct_in_col(&self, col: usize) -> usize {
        self.distinct[col].len()
    }

    /// Builds (if absent) the index for a bound-column signature.
    pub fn ensure_index(&mut self, mask: ColMask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: HashMap<Box<[ConstId]>, Vec<u32>> = HashMap::new();
        for i in 0..self.num_rows {
            let key = mask_key(mask, self.row(i));
            index.entry(key).or_default().push(i as u32);
        }
        self.indexes.insert(mask, index);
    }

    /// Row ids matching `key` under `mask`. The index must have been built
    /// with [`Relation::ensure_index`].
    pub fn probe(&self, mask: ColMask, key: &[ConstId]) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        self.indexes
            .get(&mask)
            .expect("index must be built before probing")
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Exact number of rows matching `key` under `mask` (builds the index).
    pub fn probe_count(&mut self, mask: ColMask, key: &[ConstId]) -> usize {
        if mask == 0 {
            return self.num_rows;
        }
        self.ensure_index(mask);
        self.probe(mask, key).len()
    }

    /// Order-independent content fingerprint: equal iff the tuple sets are
    /// equal, comparable across evaluations with different interner layouts.
    pub fn fingerprint(&self, interner: &Interner) -> u64 {
        let mut acc: u64 = self.num_rows as u64;
        for i in 0..self.num_rows {
            let mut h: u64 = 0x9e3779b97f4a7c15;
            for (col, id) in self.row(i).iter().enumerate() {
                h = h
                    .rotate_left(13)
                    .wrapping_add(interner.content_hash(*id))
                    .wrapping_mul(0xff51afd7ed558ccd ^ (col as u64 + 1));
            }
            acc = acc.wrapping_add(h);
        }
        acc
    }
}

/// Extracts the probe key (bound columns in ascending order) from a tuple.
pub fn mask_key(mask: ColMask, tuple: &[ConstId]) -> Box<[ConstId]> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (col, value) in tuple.iter().enumerate() {
        if mask & (1 << col) != 0 {
            key.push(*value);
        }
    }
    key.into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_counts_distinct() {
        let mut r = Relation::new(2);
        assert!(r.insert(&[1, 2]));
        assert!(r.insert(&[1, 3]));
        assert!(!r.insert(&[1, 2]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.distinct_in_col(0), 1);
        assert_eq!(r.distinct_in_col(1), 2);
        assert!(r.contains(&[1, 3]));
        assert!(!r.contains(&[2, 2]));
    }

    #[test]
    fn index_probe_finds_rows_and_survives_inserts() {
        let mut r = Relation::new(2);
        r.insert(&[1, 10]);
        r.insert(&[2, 10]);
        r.ensure_index(0b10); // index on column 1
        assert_eq!(r.probe(0b10, &[10]).len(), 2);
        // An insert after the index is built must show up in probes.
        r.insert(&[3, 10]);
        r.insert(&[3, 11]);
        assert_eq!(r.probe(0b10, &[10]).len(), 3);
        assert_eq!(r.probe(0b10, &[11]), &[3]);
        assert_eq!(r.probe_count(0b11, &[3, 11]), 1);
        assert_eq!(r.probe_count(0, &[]), 4);
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let mut a = Interner::new();
        let x = a.intern(&prolog_syntax::Term::atom("x"));
        let y = a.intern(&prolog_syntax::Term::atom("y"));
        let mut r1 = Relation::new(2);
        r1.insert(&[x, y]);
        r1.insert(&[y, x]);
        let mut r2 = Relation::new(2);
        r2.insert(&[y, x]);
        r2.insert(&[x, y]);
        assert_eq!(r1.fingerprint(&a), r2.fingerprint(&a));
        // Column position matters: {(x,y)} != {(y,x)}.
        let mut r3 = Relation::new(2);
        r3.insert(&[x, y]);
        let mut r4 = Relation::new(2);
        r4.insert(&[y, x]);
        assert_ne!(r3.fingerprint(&a), r4.fingerprint(&a));
    }

    #[test]
    fn zero_arity_relation_holds_one_row() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }
}
