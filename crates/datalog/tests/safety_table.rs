//! Accept/reject table for the safety certifier, pinning each rejection
//! diagnostic over the constructs the sample programs exercise: cut,
//! negation, arithmetic, `count/3`-style recursion, aggregation, and
//! structure recursion.

use prolog_datalog::{certify, PredClass};
use prolog_syntax::{parse_program, PredId};
use prolog_workloads::{corporate_program, family_program, CorporateConfig, FamilyConfig};

fn certify_src(src: &str) -> prolog_datalog::Certification {
    certify(&parse_program(src).expect("test program parses"))
}

fn reason_of(cert: &prolog_datalog::Certification, name: &str, arity: usize) -> String {
    cert.rejection_for(PredId::new(name, arity))
        .unwrap_or_else(|| panic!("{name}/{arity} should be rejected"))
        .to_string()
}

#[test]
fn cut_is_rejected_with_a_pinned_diagnostic() {
    let cert = certify_src(
        "max(X, Y, X) :- X >= Y, !.\n\
         max(X, Y, Y).\n",
    );
    assert_eq!(
        reason_of(&cert, "max", 3),
        "max/3 clause 1: cut is not expressible in Datalog"
    );
    assert!(!cert.is_safe(PredId::new("max", 3)));
}

#[test]
fn if_then_else_is_rejected() {
    let cert = certify_src(
        "score(a, 60).\n\
         grade(X, pass) :- score(X, S), (S >= 50 -> true ; fail).\n",
    );
    assert_eq!(
        reason_of(&cert, "grade", 2),
        "grade/2 clause 1: if-then-else is not expressible in Datalog"
    );
    // The facts stay certified even though the rule head is rejected.
    assert_eq!(cert.classes[&PredId::new("score", 2)], PredClass::Edb);
}

#[test]
fn count_recursion_is_rejected_as_unbounded_value_recursion() {
    let cert = certify_src(
        "count(0, X, X).\n\
         count(N, A, R) :- N > 0, N1 is N - 1, A1 is A + 1, count(N1, A1, R).\n",
    );
    assert_eq!(
        reason_of(&cert, "count", 3),
        "count/3 clause 2: arithmetic in a recursive clique (unbounded value recursion)"
    );
}

#[test]
fn side_effecting_builtins_and_their_callers_are_rejected() {
    let cert = certify_src(
        "event(boot).\n\
         log(X) :- write(X), nl.\n\
         audit_log(X) :- event(X), log(X).\n",
    );
    assert_eq!(
        reason_of(&cert, "log", 1),
        "log/1 clause 1: unsupported built-in write/1"
    );
    // The caller reaches a side effect, so fixity rejects it wholesale.
    assert_eq!(
        reason_of(&cert, "audit_log", 1),
        "audit_log/1: side-effecting predicate"
    );
    assert_eq!(cert.classes[&PredId::new("event", 1)], PredClass::Edb);
}

#[test]
fn depending_on_a_rejected_predicate_cascades() {
    let cert = certify_src(
        "count(0, X, X).\n\
         count(N, A, R) :- N > 0, N1 is N - 1, A1 is A + 1, count(N1, A1, R).\n\
         uses_count(A, R) :- count(3, A, R).\n",
    );
    assert_eq!(
        reason_of(&cert, "uses_count", 2),
        "uses_count/2 clause 1: depends on rejected predicate count/3"
    );
}

#[test]
fn unstratified_negation_is_rejected() {
    let cert = certify_src(
        "person(a).\n\
         p(X) :- person(X), \\+ q(X).\n\
         q(X) :- person(X), \\+ p(X).\n",
    );
    assert_eq!(
        reason_of(&cert, "p", 1),
        "p/1: negation through a recursive clique (not stratifiable)"
    );
    assert_eq!(
        reason_of(&cert, "q", 1),
        "q/1: negation through a recursive clique (not stratifiable)"
    );
}

#[test]
fn stratified_negation_is_accepted() {
    let cert = certify_src(
        "person(a). person(b). person(c).\n\
         married(a).\n\
         bachelor(X) :- person(X), \\+ married(X).\n",
    );
    assert!(cert.fully_safe(), "rejections: {:?}", cert.rejections);
    assert_eq!(cert.classes[&PredId::new("bachelor", 1)], PredClass::Idb);
    let rid = cert.program.rel(PredId::new("bachelor", 1)).unwrap();
    assert_eq!(cert.program.rels[rid].stratum, 1);
}

#[test]
fn structure_recursion_is_rejected_as_a_function_symbol() {
    let cert = certify_src(
        "sum_list([], 0).\n\
         sum_list([X|Xs], T) :- sum_list(Xs, T0), T is T0 + X.\n",
    );
    assert_eq!(
        reason_of(&cert, "sum_list", 2),
        "sum_list/2 clause 2: non-ground compound argument (function symbol)"
    );
}

#[test]
fn range_restriction_violations_name_the_head_variable() {
    let cert = certify_src(
        "q(a).\n\
         broken(X, Y) :- q(X).\n",
    );
    assert_eq!(
        reason_of(&cert, "broken", 2),
        "broken/2 clause 1: head variable Y is not range-restricted"
    );
}

#[test]
fn unbindable_tests_are_rejected() {
    let cert = certify_src(
        "q(a).\n\
         weird(X) :- q(X), Y > 3.\n",
    );
    assert_eq!(
        reason_of(&cert, "weird", 1),
        "weird/1 clause 1: test or negation with variables no generator can bind"
    );
}

#[test]
fn complex_negation_is_rejected() {
    let cert = certify_src(
        "a(x). b(x). q(x).\n\
         noneg(X) :- q(X), \\+ (a(X), b(X)).\n",
    );
    assert_eq!(
        reason_of(&cert, "noneg", 1),
        "noneg/1 clause 1: negation of a non-atomic goal"
    );
}

#[test]
fn disjunction_expands_into_conjunctive_rules() {
    let cert = certify_src(
        "l(a). r(b).\n\
         either(X) :- l(X) ; r(X).\n",
    );
    assert!(cert.fully_safe(), "rejections: {:?}", cert.rejections);
    assert_eq!(cert.classes[&PredId::new("either", 1)], PredClass::Idb);
    let rules = cert
        .program
        .rules
        .iter()
        .filter(|r| r.head == PredId::new("either", 1))
        .count();
    assert_eq!(rules, 2, "one rule per disjunct");
}

#[test]
fn family_sample_certifies_completely() {
    let (program, _) = family_program(&FamilyConfig::default());
    let cert = certify(&program);
    assert!(cert.fully_safe(), "rejections: {:?}", cert.rejections);
    // Negation-based and comparison-based filters become test predicates.
    assert_eq!(cert.classes[&PredId::new("male", 1)], PredClass::Test);
    assert_eq!(cert.classes[&PredId::new("unequal", 2)], PredClass::Test);
    assert_eq!(cert.classes[&PredId::new("female", 1)], PredClass::Idb);
    assert_eq!(cert.classes[&PredId::new("mother", 2)], PredClass::Edb);
    assert_eq!(cert.classes[&PredId::new("cousins", 2)], PredClass::Idb);
}

#[test]
fn corporate_sample_rejects_exactly_the_aggregation_cluster() {
    let (program, _) = corporate_program(&CorporateConfig::default());
    let cert = certify(&program);
    let rejected = cert.rejected_preds();
    assert_eq!(
        rejected,
        vec![PredId::new("average_pay", 2), PredId::new("sum_list", 2)],
        "rejections: {:?}",
        cert.rejections
    );
    assert_eq!(
        reason_of(&cert, "average_pay", 2),
        "average_pay/2 clause 1: unsupported built-in findall/3"
    );
    // Everything the benchmarks query stays certified.
    for (name, arity) in [
        ("benefits", 2),
        ("pay", 3),
        ("maternity", 2),
        ("tax", 2),
        ("dept_salary", 2),
    ] {
        assert_eq!(
            cert.classes.get(&PredId::new(name, arity)),
            Some(&PredClass::Idb),
            "{name}/{arity}"
        );
    }
    assert_eq!(cert.classes[&PredId::new("salary", 2)], PredClass::Edb);
}
