//! Semi-naive evaluation correctness: multi-round fixpoints, stratified
//! negation, and cross-checks of the bottom-up solution sets against the
//! top-down SLD engine on the sample workloads.

use prolog_datalog::{certify, evaluate, Evaluation, OrderStrategy};
use prolog_engine::Engine;
use prolog_syntax::{parse_program, parse_term, SourceProgram};
use prolog_workloads::{corporate_program, family_program, CorporateConfig, FamilyConfig};

fn eval_src(src: &str, strategy: OrderStrategy) -> Evaluation {
    let program = parse_program(src).expect("test program parses");
    let cert = certify(&program);
    assert!(cert.fully_safe(), "rejections: {:?}", cert.rejections);
    evaluate(&cert, strategy)
}

fn datalog_answers(eval: &Evaluation, query: &str) -> Vec<String> {
    let (goal, var_names) = parse_term(query).expect("query parses");
    eval.query(&goal, &var_names)
        .unwrap_or_else(|| panic!("{query} should be answerable bottom-up"))
}

/// Runs every query on both backends and compares solution sets. SLD
/// enumerates a multiset in proof order; bottom-up materialises a set, so
/// the SLD side is sorted and deduplicated before comparison.
fn cross_check(program: &SourceProgram, queries: &[&str]) {
    let cert = certify(program);
    let eval = evaluate(&cert, OrderStrategy::ChainCost);
    let mut engine = Engine::new();
    engine.load(program);
    for query in queries {
        let bottom_up = datalog_answers(&eval, query);
        let outcome = engine.query(query).expect("SLD query runs");
        assert!(!outcome.truncated, "{query} truncated under SLD");
        let mut sld = outcome.solution_set();
        sld.dedup();
        assert_eq!(bottom_up, sld, "backends disagree on {query}");
    }
}

const ANCESTOR: &str = "parent(a1, a2). parent(a2, a3). parent(a3, a4).\n\
     parent(a4, a5). parent(a5, a6). parent(a2, b1).\n\
     ancestor(X, Y) :- parent(X, Y).\n\
     ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n";

#[test]
fn transitive_closure_reaches_fixpoint_over_multiple_rounds() {
    let eval = eval_src(ANCESTOR, OrderStrategy::ChainCost);
    // Chain of 6 gives 5+4+3+2+1 pairs, plus b1 reachable from a1 and a2.
    assert_eq!(eval.stats.idb_tuples, 17);
    // The recursive rule needs one round per extra level of depth.
    assert!(
        eval.stats.rounds >= 4,
        "expected multi-round fixpoint, got {} rounds",
        eval.stats.rounds
    );
    assert!(!eval.stats.delta_sizes.is_empty());
    assert!(eval.stats.tuples_joined > 0);

    assert_eq!(
        datalog_answers(&eval, "ancestor(a4, X)"),
        vec!["X = a5", "X = a6"]
    );
    assert_eq!(datalog_answers(&eval, "ancestor(a1, a6)"), vec!["true"]);
    assert_eq!(
        datalog_answers(&eval, "ancestor(X, b1)"),
        vec!["X = a1", "X = a2"]
    );
    assert!(datalog_answers(&eval, "ancestor(a6, X)").is_empty());
}

#[test]
fn all_order_strategies_compute_the_same_fixpoint() {
    let baseline = eval_src(ANCESTOR, OrderStrategy::AsWritten).idb_fingerprint();
    for strategy in [OrderStrategy::BoundFirst, OrderStrategy::ChainCost] {
        let eval = eval_src(ANCESTOR, strategy);
        assert_eq!(
            eval.idb_fingerprint(),
            baseline,
            "{} diverged",
            strategy.label()
        );
    }
}

#[test]
fn stratified_negation_matches_the_sld_engine() {
    let src = "person(a). person(b). person(c). person(d).\n\
         married_to(a, c).\n\
         spouse(X) :- married_to(X, _).\n\
         spouse(X) :- married_to(_, X).\n\
         bachelor(X) :- person(X), \\+ spouse(X).\n";
    let program = parse_program(src).expect("parses");
    cross_check(&program, &["bachelor(X)", "bachelor(a)", "bachelor(b)"]);

    let eval = eval_src(src, OrderStrategy::ChainCost);
    assert_eq!(
        datalog_answers(&eval, "bachelor(X)"),
        vec!["X = b", "X = d"]
    );
    // Negating a derived relation forces a second evaluation stratum:
    // spouse must be complete before bachelor's rule runs.
    assert_eq!(eval.stats.strata, 2);
}

#[test]
fn family_solution_sets_match_the_sld_engine() {
    let (program, _) = family_program(&FamilyConfig::default());
    cross_check(
        &program,
        &[
            "father(X, Y)",
            "parent(X, Y)",
            "siblings(X, Y)",
            "sister(X, Y)",
            "brother(X, Y)",
            "grandmother(X, Y)",
            "cousins(X, Y)",
            "aunt(X, Y)",
            "married(X, Y)",
            "female(X)",
        ],
    );
}

#[test]
fn corporate_solution_sets_match_the_sld_engine() {
    let (program, _) = corporate_program(&CorporateConfig::default());
    cross_check(
        &program,
        &[
            "benefits(E, B)",
            "pay(E, N, P)",
            "maternity(E, N)",
            "tax(E, T)",
            "dept_salary(D, S)",
            "benefits(e7, B)",
        ],
    );
}

#[test]
fn derived_duplicates_collapse_to_set_semantics() {
    // Both rules derive overlap(a): bottom-up must keep a single copy
    // where SLD would enumerate the answer twice.
    let src = "p(a). q(a).\n\
         overlap(X) :- p(X).\n\
         overlap(X) :- q(X).\n";
    let eval = eval_src(src, OrderStrategy::BoundFirst);
    assert_eq!(eval.stats.idb_tuples, 1);
    assert_eq!(datalog_answers(&eval, "overlap(X)"), vec!["X = a"]);

    let program = parse_program(src).expect("parses");
    let mut engine = Engine::new();
    engine.load(&program);
    let sld = engine.query("overlap(X)").expect("runs").solution_set();
    assert_eq!(sld.len(), 2, "SLD enumerates the duplicate derivation");
}
