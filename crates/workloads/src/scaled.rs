//! Fact-scaled workload families for the bottom-up backend.
//!
//! The paper's samples carry dozens of facts — enough to exercise an SLD
//! engine, far too few for join-order effects to show up in a bottom-up
//! evaluation. These generators keep the rule bases (so certification and
//! cross-backend comparisons stay meaningful) and scale the extensional
//! database to 10^5–10^6 facts, deterministically from the requested size.
//!
//! * [`family_scaled`] preserves the paper's Fig. 6 fact-shape ratios
//!   (19 wife : 10 girl : 34 mother per 63 facts) so the tree stays
//!   three-generational at any size; `family_scaled(63)` reproduces the
//!   paper's exact counts.
//! * [`corporate_scaled`] emits the 7-facts-per-employee directory and
//!   adds two audit rules written broad-generator-first, where a
//!   selective constant-bound probe (`position(E, manager)`,
//!   `dept(E, engineering)`) should lead the join instead.

use crate::corporate::{corporate_facts, corporate_rules, CorporateConfig};
use crate::family::{family_facts, family_rules, FamilyConfig};
use prolog_syntax::{parse_program, SourceProgram};

/// A generated program plus the fact-count it was scaled to.
#[derive(Debug, Clone)]
pub struct ScaledWorkload {
    /// Workload family ("family" or "corporate").
    pub name: &'static str,
    /// Requested scale.
    pub requested_facts: usize,
    /// Facts actually emitted (exact for family; rounded up to a whole
    /// employee record for corporate).
    pub fact_count: usize,
    pub program: SourceProgram,
}

/// Rounds `n * num / 63` to nearest — 63 is the paper's total fact count,
/// so the default ratios scale exactly.
fn paper_ratio(n: usize, num: usize) -> usize {
    (n * num + 31) / 63
}

/// A family tree scaled to exactly `n` facts (`wife/2` + `girl/1` +
/// `mother/2`), deterministic in `n`. Requires `n >= 10` so every
/// generation is populated.
pub fn family_scaled(n: usize) -> ScaledWorkload {
    assert!(n >= 10, "family_scaled needs at least 10 facts");
    let couples = paper_ratio(n, 19).max(2);
    let config = FamilyConfig {
        // Distinct trees at distinct scales, stable for a given scale.
        seed: 1988 ^ (n as u64),
        couples,
        founder_couples: (couples * 6 / 19).max(1),
        girls: paper_ratio(n, 10).max(1),
        boys: paper_ratio(n, 7).max(1),
        mother_facts: 0, // set below: the remainder makes the total exact
    };
    let mother_facts = n - config.couples - config.girls;
    let config = FamilyConfig {
        mother_facts,
        ..config
    };
    let facts = family_facts(&config);
    let src = format!("{}\n{}", family_rules(), facts.source);
    let program = parse_program(&src).expect("scaled family program parses");
    ScaledWorkload {
        name: "family",
        requested_facts: n,
        fact_count: config.couples + config.girls + config.mother_facts,
        program,
    }
}

/// The corporate rule base plus two audit rules whose bodies are written
/// generator-first — the shape where bound-variables-first has no signal
/// (no variable is bound before the first goal) and the chain-cost model
/// can lead with the selective constant-bound probe instead.
pub fn corporate_scaled_rules() -> String {
    format!(
        "{}\n\
         audit(E, N) :- employee(E), name(E, N), position(E, manager), years(E, Y), Y >= 25.\n\
         senior_staff(E, N) :- name(E, N), dept(E, engineering), years(E, Y), Y >= 20.\n",
        corporate_rules()
    )
}

/// A corporate directory scaled to at least `n` facts (7 per employee,
/// rounded up to a whole record), deterministic in `n`.
pub fn corporate_scaled(n: usize) -> ScaledWorkload {
    assert!(
        n >= 7,
        "corporate_scaled needs at least one employee record"
    );
    let employees = n.div_ceil(7);
    let config = CorporateConfig {
        seed: 42 ^ (n as u64),
        employees,
    };
    let facts = corporate_facts(&config);
    let src = format!("{}\n{}", corporate_scaled_rules(), facts.source);
    let program = parse_program(&src).expect("scaled corporate program parses");
    ScaledWorkload {
        name: "corporate",
        requested_facts: n,
        fact_count: employees * 7,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::PredId;

    #[test]
    fn family_scale_63_reproduces_the_paper_counts() {
        let w = family_scaled(63);
        assert_eq!(w.fact_count, 63);
        let count = |name: &str, arity: usize| w.program.clauses_of(PredId::new(name, arity)).len();
        assert_eq!(count("wife", 2), 19);
        assert_eq!(count("girl", 1), 10);
        assert_eq!(count("mother", 2), 34);
    }

    #[test]
    fn family_scaled_counts_are_exact_and_golden() {
        let w = family_scaled(1000);
        assert_eq!(w.fact_count, 1000);
        let count = |name: &str, arity: usize| w.program.clauses_of(PredId::new(name, arity)).len();
        // Golden shape at n=1000: 19/63, 10/63, and the remainder.
        assert_eq!(count("wife", 2), 302);
        assert_eq!(count("girl", 1), 159);
        assert_eq!(count("mother", 2), 539);
    }

    #[test]
    fn corporate_scaled_counts_are_golden() {
        let w = corporate_scaled(700);
        assert_eq!(w.fact_count, 700);
        let count = |name: &str, arity: usize| w.program.clauses_of(PredId::new(name, arity)).len();
        assert_eq!(count("employee", 1), 100);
        assert_eq!(count("salary", 2), 100);
        assert_eq!(count("position", 2), 100);
        // The audit rules ride along with the scaled rule base.
        assert_eq!(count("audit", 2), 1);
        assert_eq!(count("senior_staff", 2), 1);
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let a = family_scaled(500);
        let b = family_scaled(500);
        assert_eq!(a.program.clauses.len(), b.program.clauses.len());
        assert_eq!(
            format!("{:?}", a.program.clauses.first()),
            format!("{:?}", b.program.clauses.first())
        );
        let c = corporate_scaled(490);
        let d = corporate_scaled(490);
        assert_eq!(
            format!("{:?}", c.program.clauses.last()),
            format!("{:?}", d.program.clauses.last())
        );
    }
}
