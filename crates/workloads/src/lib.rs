//! The benchmark programs of the paper's evaluation (§VII), plus the
//! geography domain of the Warren-1981 baseline (§I-E).
//!
//! The paper's exact fact bases are unpublished; these generators rebuild
//! them to the published aggregate shapes (documented per module), with a
//! seeded RNG so every run is deterministic. See DESIGN.md §2 for the
//! substitution rationale.
//!
//! * [`family`] — the family-tree program of Fig. 6: 55 constants,
//!   10 `girl/1`, 19 `wife/2`, 34 `mother/2` facts (Table II).
//! * [`corporate`] — a corporate database with 100+ employees indexed by
//!   id (Table III).
//! * [`puzzles`] — `p58`, `meal`, and `team` (Table IV).
//! * [`kmbench`] — a small Horn-clause theorem prover running a benchmark
//!   set (Table IV's `kmbench`).
//! * [`geography`] — a CHAT-80-style country database with
//!   English-word-order conjunctive questions (the Warren baseline's
//!   workload, §I-E).
//! * [`queries`] — helpers that enumerate the per-mode query sets the
//!   paper uses ("one call for each possible instantiation").
//! * [`corpus`] — every workload rendered to program text under a stable
//!   name, for load generators and cross-tool byte comparisons.

pub mod corporate;
pub mod corpus;
pub mod family;
pub mod geography;
pub mod kmbench;
pub mod puzzles;
pub mod queries;
pub mod scaled;

pub use corporate::{corporate_program, corporate_rules, CorporateConfig, CorporateFacts};
pub use corpus::{corpus, corpus_program, CorpusProgram};
pub use family::{family_program, family_rules, FamilyConfig, FamilyFacts};
pub use queries::{mode_queries, QuerySpec};
pub use scaled::{corporate_scaled, corporate_scaled_rules, family_scaled, ScaledWorkload};
