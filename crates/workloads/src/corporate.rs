//! The corporate-database program (paper Table III).
//!
//! "We also restructured some rules from a corporate database (over 100
//! employees) written in Prolog. … The facts in this database are indexed
//! on the employee identification number; once that is instantiated, many
//! goals of the rules become trivial. Reordering essentially becomes a way
//! to make the rules find, as quickly and inexpensively as possible, the
//! smallest superset of these numbers whose owners satisfy the rule."
//!
//! The original database is proprietary; this generator rebuilds its
//! shape: id-indexed attribute facts over 120 employees and the five rule
//! families of Table III — `benefits/2` and `maternity/2` written with a
//! broad generator first (so reordering pays ≈2×), `pay/3` and
//! `average_pay/2` already in good order or dominated by a semifixed
//! `findall` (ratio 1.00), and `tax/2` mildly improvable.

use prolog_syntax::{parse_program, SourceProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generator parameters; the default matches the paper's "over 100
/// employees".
#[derive(Debug, Clone)]
pub struct CorporateConfig {
    pub seed: u64,
    pub employees: usize,
}

impl Default for CorporateConfig {
    fn default() -> Self {
        CorporateConfig {
            seed: 42,
            employees: 120,
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy", "ken",
    "laura", "mallory", "nick", "olivia", "peggy", "quentin", "rupert", "sybil", "trent", "ursula",
    "victor", "wendy", "xavier", "yolanda", "zach", "amy", "brian", "cathy", "derek", "ella",
    "fred", "gina", "hank", "iris", "jack", "kate", "liam", "mona",
];

const DEPARTMENTS: &[&str] = &[
    "sales",
    "engineering",
    "accounting",
    "hr",
    "legal",
    "support",
    "research",
    "ops",
];

/// The generated database plus its employee-id universe.
#[derive(Debug, Clone)]
pub struct CorporateFacts {
    pub source: String,
    pub ids: Vec<String>,
}

/// Generates the id-indexed fact base. Employee `e1` is always `jane`
/// (female, 6 years, engineering) so the paper's `pay(-, jane, -)` and
/// `maternity(-, jane)` queries have a stable target.
pub fn corporate_facts(config: &CorporateConfig) -> CorporateFacts {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut source = String::new();
    let mut ids = Vec::with_capacity(config.employees);
    for i in 1..=config.employees {
        let id = format!("e{i}");
        let name = if i == 1 {
            "jane".to_string()
        } else {
            // Names repeat across employees, as in any real directory.
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string()
        };
        let female = if i == 1 { true } else { rng.gen_bool(0.45) };
        let dept = DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())];
        let years: u32 = if i == 1 { 6 } else { rng.gen_range(0..30) };
        let salary: u32 = 20_000 + 1_000 * rng.gen_range(0..60u32) + 500 * years;
        let manager = rng.gen_bool(0.12);
        let _ = writeln!(source, "employee({id}).");
        let _ = writeln!(source, "name({id}, {name}).");
        let _ = writeln!(
            source,
            "gender({id}, {}).",
            if female { "female" } else { "male" }
        );
        let _ = writeln!(source, "dept({id}, {dept}).");
        let _ = writeln!(source, "years({id}, {years}).");
        let _ = writeln!(source, "salary({id}, {salary}).");
        if manager {
            let _ = writeln!(source, "position({id}, manager).");
        } else {
            let _ = writeln!(source, "position({id}, staff).");
        }
        ids.push(id);
    }
    CorporateFacts { source, ids }
}

/// The rule base. Orders are deliberately "as a programmer would write
/// them" — generator first, tests after — leaving room for the reorderer.
pub fn corporate_rules() -> &'static str {
    "
    % Full benefits: written broad-generator-first; the selective
    % position/2 and years/2 goals should lead.
    benefits(E, full) :- employee(E), years(E, Y), Y >= 10, position(E, manager).
    benefits(E, standard) :- employee(E), years(E, Y), Y >= 3, gender(E, _).
    benefits(E, probationary) :- employee(E), years(E, Y), Y < 3.

    % Pay: already in a good order (id-indexed chain), ratio ~1.
    pay(E, N, P) :- name(E, N), salary(E, S), years(E, Y), P is S + 100 * Y.

    % Maternity eligibility: employee/1 first is wasteful; the gender test
    % sits last although it halves the candidates.
    maternity(E, N) :- employee(E), name(E, N), years(E, Y), Y >= 1, gender(E, female).

    % Average pay per department: dominated by a set predicate, which is
    % semifixed — the reorderer must leave it alone.
    average_pay(D, A) :- dept_name(D), findall(S, dept_salary(D, S), L),
                         sum_list(L, T), length(L, N), N > 0, A is T // N.
    dept_salary(D, S) :- dept(E, D), salary(E, S).
    dept_name(sales). dept_name(engineering). dept_name(accounting).
    dept_name(hr). dept_name(legal). dept_name(support).
    dept_name(research). dept_name(ops).
    sum_list([], 0).
    sum_list([X|Xs], T) :- sum_list(Xs, T0), T is T0 + X.

    % Tax band: the arithmetic test can move ahead of the years lookup.
    tax(E, T) :- employee(E), years(E, Y), Y >= 0, salary(E, S), S > 45000, T is S // 4.
    tax(E, T) :- employee(E), salary(E, S), S =< 45000, T is S // 5.
    "
}

/// Full program: rules + facts.
pub fn corporate_program(config: &CorporateConfig) -> (SourceProgram, Vec<String>) {
    let facts = corporate_facts(config);
    let src = format!("{}\n{}", corporate_rules(), facts.source);
    let program = parse_program(&src).expect("corporate program parses");
    (program, facts.ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;
    use prolog_syntax::PredId;

    #[test]
    fn default_has_over_100_employees() {
        let (program, ids) = corporate_program(&CorporateConfig::default());
        assert_eq!(ids.len(), 120);
        assert_eq!(program.clauses_of(PredId::new("employee", 1)).len(), 120);
        assert_eq!(program.clauses_of(PredId::new("salary", 2)).len(), 120);
    }

    #[test]
    fn jane_is_employee_one() {
        let (program, _) = corporate_program(&CorporateConfig::default());
        let mut e = Engine::new();
        e.load(&program);
        assert!(e.has_solution("name(e1, jane)").unwrap());
        assert!(e.has_solution("gender(e1, female)").unwrap());
    }

    #[test]
    fn rules_produce_answers() {
        let (program, _) = corporate_program(&CorporateConfig::default());
        let mut e = Engine::new();
        e.load(&program);
        assert!(e.query("benefits(E, B)").unwrap().succeeded());
        assert!(e.query("pay(E, jane, P)").unwrap().succeeded());
        assert!(e.query("maternity(E, N)").unwrap().succeeded());
        assert!(e.query("tax(E, T)").unwrap().succeeded());
        let avg = e.query("average_pay(engineering, A)").unwrap();
        assert!(avg.succeeded());
    }

    #[test]
    fn average_pay_is_consistent_with_raw_facts() {
        let (program, _) = corporate_program(&CorporateConfig::default());
        let mut e = Engine::new();
        e.load(&program);
        let avg = e.query("average_pay(sales, A)").unwrap();
        let a = avg.solutions[0].get("A").unwrap().to_string();
        let salaries = e.query("dept_salary(sales, S)").unwrap();
        let total: i64 = salaries
            .solutions
            .iter()
            .map(|s| s.get("S").unwrap().to_string().parse::<i64>().unwrap())
            .sum();
        let n = salaries.solutions.len() as i64;
        assert_eq!(a, (total / n).to_string());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = corporate_facts(&CorporateConfig::default());
        let b = corporate_facts(&CorporateConfig::default());
        assert_eq!(a.source, b.source);
    }
}
