//! The small query programs of Table IV: `p58`, `meal`, and `team`.
//!
//! The paper cites "How to solve it in Prolog" for `p58`, and describes
//! `meal` ("plans meals") and `team` ("generates project teams") in one
//! line each; none of the sources are reproduced. These are faithful
//! stand-ins with the properties the paper reports:
//!
//! * `p58(+,+)` — a single reorderable clause whose cheap test trails the
//!   generators (ratio ≈ 1.5);
//! * `meal(-,-,-)` / `meal(+,+,-)` — generators of similar size, so
//!   reordering helps only marginally (ratio ≈ 1.06);
//! * `team(-,-)` / `team(+,+)` — expensive candidate×candidate generation
//!   ahead of highly selective skill tests (ratio ≈ 3.5).

use prolog_syntax::{parse_program, SourceProgram};

/// `p58`: connected-places puzzle over a small transport network. The
/// clause is written generators-first, with the cheap `shorter/2` test
/// last — exactly the shape Warren's English-generated queries had.
pub fn p58_program() -> SourceProgram {
    parse_program(
        "
        p58(X, Y) :- rail(X, Z), road(Z, Y), shorter(X, Y).

        rail(a, b). rail(a, c). rail(b, d). rail(b, e). rail(c, f).
        rail(d, g). rail(e, h). rail(f, h). rail(g, h). rail(h, a).
        rail(c, d). rail(e, f).

        road(b, c). road(b, f). road(c, g). road(d, a). road(d, h).
        road(e, a). road(e, g). road(f, b). road(f, d). road(g, e).
        road(h, c). road(h, f). road(g, a). road(a, e). road(c, a).

        shorter(a, c). shorter(a, e). shorter(b, g). shorter(c, a).
        shorter(d, h). shorter(e, a). shorter(f, b). shorter(h, f).
        ",
    )
    .expect("p58 parses")
}

/// The place constants of `p58` (its query universe).
pub fn p58_universe() -> Vec<String> {
    "abcdefgh".chars().map(|c| c.to_string()).collect()
}

/// `meal`: three-course planning under a calorie budget. All three
/// generators have similar fan-out, so there is little for the reorderer
/// to exploit — the paper's point about this program.
pub fn meal_program() -> SourceProgram {
    parse_program(
        "
        meal(A, M, D) :- appetizer(A, Ca), main_course(M, Cm), dessert(D, Cd),
                         T is Ca + Cm + Cd, T =< 800.

        appetizer(soup, 150). appetizer(salad, 100). appetizer(pate, 250).
        appetizer(melon, 80). appetizer(prawns, 200). appetizer(bread, 120).

        main_course(steak, 500). main_course(chicken, 400). main_course(sole, 350).
        main_course(pasta, 450). main_course(risotto, 420). main_course(tofu, 300).
        main_course(lamb, 550). main_course(pork, 480).

        dessert(cake, 350). dessert(fruit, 120). dessert(ice_cream, 250).
        dessert(cheese, 300). dessert(sorbet, 150).
        ",
    )
    .expect("meal parses")
}

/// The dish constants of `meal`, by course.
pub fn meal_universe() -> (Vec<String>, Vec<String>, Vec<String>) {
    let v = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
    (
        v(&["soup", "salad", "pate", "melon", "prawns", "bread"]),
        v(&[
            "steak", "chicken", "sole", "pasta", "risotto", "tofu", "lamb", "pork",
        ]),
        v(&["cake", "fruit", "ice_cream", "cheese", "sorbet"]),
    )
}

/// `team`: pair a designer with a coder. Written the worst way — generate
/// all candidate pairs, then test — so reordering pays well (the paper
/// reports ≈3.5× on both modes).
pub fn team_program() -> SourceProgram {
    parse_program(
        "
        team(L, M) :- candidate(L), candidate(M), L \\== M,
                      available(L), available(M),
                      skill(L, design), skill(M, coding), compatible(L, M).

        candidate(c01). candidate(c02). candidate(c03). candidate(c04).
        candidate(c05). candidate(c06). candidate(c07). candidate(c08).
        candidate(c09). candidate(c10). candidate(c11). candidate(c12).
        candidate(c13). candidate(c14). candidate(c15). candidate(c16).
        candidate(c17). candidate(c18). candidate(c19). candidate(c20).

        skill(c01, design). skill(c04, design). skill(c09, design).
        skill(c12, design). skill(c17, design).
        skill(c02, coding). skill(c03, coding). skill(c07, coding).
        skill(c09, coding). skill(c14, coding). skill(c18, coding).
        skill(c20, coding).

        available(c01). available(c02). available(c03). available(c04).
        available(c07). available(c09). available(c11). available(c12).
        available(c14). available(c15). available(c18).

        compatible(c01, c02). compatible(c01, c07). compatible(c04, c03).
        compatible(c04, c14). compatible(c09, c18). compatible(c12, c02).
        compatible(c12, c14). compatible(c17, c20). compatible(c01, c14).
        compatible(c09, c02).
        ",
    )
    .expect("team parses")
}

/// The candidate constants of `team`.
pub fn team_universe() -> Vec<String> {
    (1..=20).map(|i| format!("c{i:02}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;

    fn engine(p: SourceProgram) -> Engine {
        let mut e = Engine::new();
        e.load(&p);
        e
    }

    #[test]
    fn p58_has_solutions_in_both_modes() {
        let mut e = engine(p58_program());
        let all = e.query("p58(X, Y)").unwrap();
        assert!(all.succeeded());
        // every reported pair is also confirmed in (+,+) mode
        for s in &all.solutions {
            let x = s.get("X").unwrap();
            let y = s.get("Y").unwrap();
            assert!(e.has_solution(&format!("p58({x}, {y})")).unwrap());
        }
    }

    #[test]
    fn meal_respects_the_calorie_budget() {
        let mut e = engine(meal_program());
        let meals = e.query("meal(A, M, D)").unwrap();
        assert!(meals.succeeded());
        // spot-check: the heaviest combination is excluded
        assert!(!e.has_solution("meal(pate, lamb, cake)").unwrap());
        // and a light one is included
        assert!(e.has_solution("meal(melon, tofu, fruit)").unwrap());
    }

    #[test]
    fn team_pairs_designers_with_coders() {
        let mut e = engine(team_program());
        let teams = e.query("team(L, M)").unwrap();
        assert!(teams.succeeded());
        for s in &teams.solutions {
            let l = s.get("L").unwrap();
            let m = s.get("M").unwrap();
            assert!(e.has_solution(&format!("skill({l}, design)")).unwrap());
            assert!(e.has_solution(&format!("skill({m}, coding)")).unwrap());
            assert!(e.has_solution(&format!("compatible({l}, {m})")).unwrap());
        }
    }

    #[test]
    fn universes_cover_the_programs() {
        assert_eq!(p58_universe().len(), 8);
        let (a, m, d) = meal_universe();
        assert_eq!((a.len(), m.len(), d.len()), (6, 8, 5));
        assert_eq!(team_universe().len(), 20);
    }
}
