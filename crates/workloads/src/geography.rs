//! A geography database in the style of Warren's CHAT-80 setting — the
//! domain of the queries the paper's §I-E discusses ("a user typed in a
//! question on geography, and a parser generated a query. The order of
//! the goals in the query corresponded to the order of the words in the
//! question. Such orders were often inefficient.").
//!
//! The generator builds `country/1`, `borders/2`, `capital/2`,
//! `population/2` (in units of 100k), and `continent/2` facts, plus a set
//! of English-word-order conjunctive queries whose goal order is
//! deliberately the "question order", not a good execution order.

use prolog_syntax::{parse_program, parse_term, SourceProgram, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generator parameters. The default is a laptop-scale version of
/// Warren's database ("about 150 countries", "borders/2 … 900 tuples").
#[derive(Debug, Clone)]
pub struct GeographyConfig {
    pub seed: u64,
    pub countries: usize,
    /// Average borders per country.
    pub mean_borders: usize,
}

impl Default for GeographyConfig {
    fn default() -> Self {
        GeographyConfig {
            seed: 80,
            countries: 40,
            mean_borders: 5,
        }
    }
}

const CONTINENTS: &[&str] = &["europe", "asia", "africa", "america", "oceania"];

/// The generated database and its constants.
#[derive(Debug, Clone)]
pub struct Geography {
    pub program: SourceProgram,
    pub countries: Vec<String>,
}

/// Generates the database.
pub fn geography(config: &GeographyConfig) -> Geography {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let countries: Vec<String> = (1..=config.countries).map(|i| format!("c{i:02}")).collect();
    let mut src = String::new();
    for (i, c) in countries.iter().enumerate() {
        let _ = writeln!(src, "country({c}).");
        let _ = writeln!(src, "capital({c}, cap_{c}).");
        let _ = writeln!(src, "population({c}, {}).", rng.gen_range(5..1500));
        let _ = writeln!(src, "continent({c}, {}).", CONTINENTS[i % CONTINENTS.len()]);
    }
    // Borders: symmetric random pairs, ~mean_borders per country.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let target = config.countries * config.mean_borders / 2;
    while pairs.len() < target {
        let a = rng.gen_range(0..config.countries);
        let b = rng.gen_range(0..config.countries);
        if a != b && !pairs.contains(&(a, b)) && !pairs.contains(&(b, a)) {
            pairs.push((a, b));
        }
    }
    for (a, b) in pairs {
        let _ = writeln!(src, "borders({}, {}).", countries[a], countries[b]);
        let _ = writeln!(src, "borders({}, {}).", countries[b], countries[a]);
    }
    let program = parse_program(&src).expect("geography parses");
    Geography { program, countries }
}

/// English-word-order conjunctive queries (goal order = question order),
/// as `(query_text, variable_names)` — the shapes Warren's parser
/// produced. `{cap}` is replaced by the capital of the first country so
/// half-instantiated queries exist.
pub fn question_queries(geo: &Geography) -> Vec<(Term, Vec<String>)> {
    let c1 = &geo.countries[0];
    let c2 = &geo.countries[1];
    let texts = [
        // "Which countries border c1?"
        format!("(country(X), borders(X, {c1}))"),
        // "Which country's capital is cap_c2?"
        format!("(country(X), capital(X, cap_{c2}))"),
        // "Which countries in europe border an asian country?"
        "(country(X), continent(X, europe), borders(X, Y), continent(Y, asia))".to_string(),
        // "Which countries with population above 800 border c1?"
        format!("(country(X), population(X, P), P > 800, borders(X, {c1}))"),
        // "Which pairs of bordering countries share a continent?"
        "(country(X), country(Y), borders(X, Y), continent(X, K), continent(Y, K))".to_string(),
        // "Which European countries border two different countries?"
        "(country(X), continent(X, europe), borders(X, Y), borders(X, Z), Y \\== Z)".to_string(),
    ];
    texts
        .iter()
        .map(|t| {
            let (term, names) = parse_term(t).expect("query parses");
            (term, names)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;
    use prolog_syntax::PredId;

    #[test]
    fn generated_shape() {
        let geo = geography(&GeographyConfig::default());
        assert_eq!(geo.countries.len(), 40);
        assert_eq!(geo.program.clauses_of(PredId::new("country", 1)).len(), 40);
        let borders = geo.program.clauses_of(PredId::new("borders", 2)).len();
        assert_eq!(borders, 2 * (40 * 5 / 2)); // symmetric closure
    }

    #[test]
    fn queries_run_and_have_answers() {
        let geo = geography(&GeographyConfig::default());
        let mut e = Engine::new();
        e.load(&geo.program);
        let mut any = false;
        for (q, names) in question_queries(&geo) {
            let out = e.query_term(&q, &names, usize::MAX).expect("query runs");
            any |= out.succeeded();
        }
        assert!(any, "at least one question should have answers");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = geography(&GeographyConfig::default());
        let b = geography(&GeographyConfig::default());
        assert_eq!(
            prolog_syntax::pretty::program_to_string(&a.program),
            prolog_syntax::pretty::program_to_string(&b.program)
        );
    }
}
