//! Per-mode query generation (paper §VII).
//!
//! "We called each predicate in each mode, with one call for each possible
//! instantiation. Therefore, testing mode (-,-) required one call, modes
//! (-,+) and (+,-) required 55 apiece, and modes (+,+) required 3025."
//! [`mode_queries`] reproduces that enumeration for any predicate over a
//! constant universe.

use prolog_analysis::{Mode, ModeItem};
use prolog_engine::{Counters, Engine, QueryError};
use prolog_syntax::Term;

/// A predicate to exercise in a mode, over a universe of constants.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub name: String,
    pub mode: Mode,
    pub universe: Vec<String>,
}

/// Enumerates the query goals for a spec: every combination of constants
/// in the `+` positions, fresh variables elsewhere.
pub fn mode_queries(spec: &QuerySpec) -> Vec<Term> {
    let arity = spec.mode.arity();
    let bound_positions: Vec<usize> = spec
        .mode
        .items()
        .iter()
        .enumerate()
        .filter(|(_, m)| **m == ModeItem::Plus)
        .map(|(i, _)| i)
        .collect();
    let k = bound_positions.len();
    let n = spec.universe.len();
    let total = n.pow(k as u32);
    let mut out = Vec::with_capacity(total.max(1));
    for mut combo in 0..total.max(1) {
        let mut args: Vec<Term> = Vec::with_capacity(arity);
        let mut var_idx = 0;
        let mut choices = Vec::with_capacity(k);
        for _ in 0..k {
            choices.push(combo % n.max(1));
            combo /= n.max(1);
        }
        let mut choice_iter = choices.into_iter();
        for (i, item) in spec.mode.items().iter().enumerate() {
            let _ = i;
            match item {
                ModeItem::Plus => {
                    let c = choice_iter.next().expect("one choice per + position");
                    args.push(Term::atom(&spec.universe[c]));
                }
                _ => {
                    args.push(Term::Var(var_idx));
                    var_idx += 1;
                }
            }
        }
        out.push(Term::app(&spec.name, args));
    }
    out
}

/// Runs every query of a spec on `engine`, returning the total counters
/// and the multiset of solution sets (for equivalence checking).
pub fn run_mode_queries(
    engine: &mut Engine,
    spec: &QuerySpec,
) -> Result<(Counters, Vec<Vec<String>>), QueryError> {
    let mut total = Counters::default();
    let mut all_solutions = Vec::new();
    for goal in mode_queries(spec) {
        let nvars = goal.variables().len();
        let names: Vec<String> = (0..nvars).map(|i| format!("V{i}")).collect();
        let outcome = engine
            .query_term(&goal, &names, usize::MAX)
            .map_err(QueryError::Engine)?;
        total.add(&outcome.counters);
        all_solutions.push(outcome.solution_set());
    }
    Ok((total, all_solutions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, mode: &str, universe: &[&str]) -> QuerySpec {
        QuerySpec {
            name: name.into(),
            mode: Mode::parse(mode).unwrap(),
            universe: universe.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn query_counts_match_the_paper_formula() {
        let u: Vec<&str> = (0..55).map(|_| "p").collect::<Vec<_>>();
        assert_eq!(mode_queries(&spec("aunt", "--", &u)).len(), 1);
        assert_eq!(mode_queries(&spec("aunt", "-+", &u)).len(), 55);
        assert_eq!(mode_queries(&spec("aunt", "+-", &u)).len(), 55);
        assert_eq!(mode_queries(&spec("aunt", "++", &u)).len(), 3025);
    }

    #[test]
    fn bound_positions_enumerate_all_combinations() {
        let qs = mode_queries(&spec("p", "++", &["a", "b"]));
        let printed: Vec<String> = qs.iter().map(|t| t.to_string()).collect();
        assert_eq!(qs.len(), 4);
        assert!(printed.contains(&"p(a, a)".to_string()));
        assert!(printed.contains(&"p(b, a)".to_string()));
        assert!(printed.contains(&"p(a, b)".to_string()));
        assert!(printed.contains(&"p(b, b)".to_string()));
    }

    #[test]
    fn free_positions_get_distinct_variables() {
        let qs = mode_queries(&spec("p", "--", &["a"]));
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].variables().len(), 2);
    }

    #[test]
    fn run_mode_queries_accumulates_counters() {
        let mut e = Engine::new();
        e.consult("p(a, 1). p(b, 2).").unwrap();
        let (counters, solutions) =
            run_mode_queries(&mut e, &spec("p", "+-", &["a", "b"])).unwrap();
        assert_eq!(solutions.len(), 2);
        assert_eq!(counters.user_calls, 2);
        assert!(solutions.iter().all(|s| s.len() == 1));
    }
}
