//! The family-tree program (paper Fig. 6 + Table II).
//!
//! "55 constants in the program represent people. … There are also 10
//! facts for girl/1, 19 for wife/2, and 34 for mother/2." The generator
//! reproduces exactly those counts with a consistent three-generation
//! structure:
//!
//! * 19 couples (38 people): 6 founder couples (generation 0) and 13
//!   generation-1 couples whose members may have recorded mothers;
//! * 17 single children (10 girls, 7 boys) in generation 2;
//! * 34 `mother/2` facts: every single child (17) plus 17 of the 26
//!   generation-1 couple members.
//!
//! Which mother each child gets is drawn from a seeded RNG, so different
//! seeds give different trees with identical aggregate shape.

use prolog_syntax::{parse_program, SourceProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Shape parameters of the generated tree. The default reproduces the
/// paper's counts.
#[derive(Debug, Clone)]
pub struct FamilyConfig {
    pub seed: u64,
    /// Total couples (each contributes one `wife/2` fact).
    pub couples: usize,
    /// Founder couples with no recorded parents.
    pub founder_couples: usize,
    /// Single (unmarried, childless) girls — the `girl/1` facts.
    pub girls: usize,
    /// Single boys.
    pub boys: usize,
    /// Total `mother/2` facts to emit.
    pub mother_facts: usize,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            seed: 1988, // year of the paper
            couples: 19,
            founder_couples: 6,
            girls: 10,
            boys: 7,
            mother_facts: 34,
        }
    }
}

impl FamilyConfig {
    /// Number of distinct person constants the configuration yields.
    pub fn people(&self) -> usize {
        2 * self.couples + self.girls + self.boys
    }
}

/// The generated fact base, plus the person list for query generation.
#[derive(Debug, Clone)]
pub struct FamilyFacts {
    pub source: String,
    pub people: Vec<String>,
}

/// Generates the `wife/2`, `mother/2`, and `girl/1` facts.
pub fn family_facts(config: &FamilyConfig) -> FamilyFacts {
    assert!(config.founder_couples <= config.couples);
    let gen1_members = 2 * (config.couples - config.founder_couples);
    let singles = config.girls + config.boys;
    assert!(
        config.mother_facts <= gen1_members + singles,
        "not enough candidate children for {} mother facts",
        config.mother_facts
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let husbands: Vec<String> = (1..=config.couples).map(|i| format!("h{i}")).collect();
    let wives: Vec<String> = (1..=config.couples).map(|i| format!("w{i}")).collect();
    let girls: Vec<String> = (1..=config.girls).map(|i| format!("g{i}")).collect();
    let boys: Vec<String> = (1..=config.boys).map(|i| format!("b{i}")).collect();

    let mut source = String::new();
    for (h, w) in husbands.iter().zip(&wives) {
        let _ = writeln!(source, "wife({h}, {w}).");
    }
    for g in &girls {
        let _ = writeln!(source, "girl({g}).");
    }

    // Candidate children: generation-1 couple members (mothers are founder
    // wives), then singles (mothers are generation-1 wives).
    let founder_wives = &wives[..config.founder_couples];
    let gen1_wives = &wives[config.founder_couples..];
    let mut mothers_emitted = 0;
    let mut gen1_children: Vec<&String> = husbands[config.founder_couples..]
        .iter()
        .chain(&wives[config.founder_couples..])
        .collect();
    // Singles always get mothers (they are the youngest generation).
    let single_children: Vec<&String> = girls.iter().chain(&boys).collect();
    for child in &single_children {
        if mothers_emitted >= config.mother_facts {
            break;
        }
        let m = &gen1_wives[rng.gen_range(0..gen1_wives.len().max(1))];
        let _ = writeln!(source, "mother({child}, {m}).");
        mothers_emitted += 1;
    }
    // Fill the remainder from generation-1 members.
    while mothers_emitted < config.mother_facts && !gen1_children.is_empty() {
        let idx = rng.gen_range(0..gen1_children.len());
        let child = gen1_children.swap_remove(idx);
        let m = &founder_wives[rng.gen_range(0..founder_wives.len().max(1))];
        let _ = writeln!(source, "mother({child}, {m}).");
        mothers_emitted += 1;
    }
    assert_eq!(mothers_emitted, config.mother_facts);

    let mut people = Vec::with_capacity(config.people());
    people.extend(husbands);
    people.extend(wives);
    people.extend(girls);
    people.extend(boys);
    FamilyFacts { source, people }
}

/// The rule base of Fig. 6, verbatim modulo `unequal/2` (which the paper
/// uses but does not list; it is `\==/2`).
pub fn family_rules() -> &'static str {
    "
    female(X) :- girl(X).
    female(X) :- wife(_, X).
    male(X) :- not(female(X)).
    father(X, Y) :- mother(X, M), wife(Y, M).
    parent(X, Y) :- mother(X, Y).
    parent(X, Y) :- father(X, Y).
    married(X, Y) :- wife(X, Y).
    married(X, Y) :- wife(Y, X).
    siblings(X, Y) :- mother(X, M), mother(Y, M), unequal(X, Y).
    sister(X, Y) :- siblings(X, Y), female(Y).
    brother(X, Y) :- siblings(X, Y), male(Y).
    grandmother(X, Y) :- parent(X, Z), mother(Z, Y).
    cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, Z).
    cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, V), married(V, Z).
    aunt(X, Y) :- parent(X, P), sister(P, Y).
    aunt(X, Y) :- parent(X, P), brother(P, B), wife(B, Y).
    unequal(X, Y) :- X \\== Y.
    "
}

/// The full program: rules + generated facts.
pub fn family_program(config: &FamilyConfig) -> (SourceProgram, Vec<String>) {
    let facts = family_facts(config);
    let src = format!("{}\n{}", family_rules(), facts.source);
    let program = parse_program(&src).expect("family program parses");
    (program, facts.people)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;
    use prolog_syntax::PredId;

    #[test]
    fn default_counts_match_the_paper() {
        let config = FamilyConfig::default();
        let (program, people) = family_program(&config);
        assert_eq!(people.len(), 55, "55 constants represent people");
        let count = |name: &str, arity: usize| program.clauses_of(PredId::new(name, arity)).len();
        assert_eq!(count("girl", 1), 10);
        assert_eq!(count("wife", 2), 19);
        assert_eq!(count("mother", 2), 34);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = family_facts(&FamilyConfig::default());
        let b = family_facts(&FamilyConfig::default());
        assert_eq!(a.source, b.source);
        let c = family_facts(&FamilyConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn no_one_is_their_own_mother() {
        let (program, _) = family_program(&FamilyConfig::default());
        for clause in program.clauses_of(PredId::new("mother", 2)) {
            assert_ne!(clause.head.args()[0], clause.head.args()[1]);
        }
    }

    #[test]
    fn queries_run_and_find_relatives() {
        let (program, _) = family_program(&FamilyConfig::default());
        let mut engine = Engine::new();
        engine.load(&program);
        let gm = engine.query("grandmother(X, Y)").unwrap();
        assert!(gm.succeeded(), "the tree has grandmothers");
        let siblings = engine.query("siblings(X, Y)").unwrap();
        assert!(siblings.succeeded(), "the tree has siblings");
        // siblings is symmetric
        let s0 = &siblings.solutions[0];
        let x = s0.get("X").unwrap().to_string();
        let y = s0.get("Y").unwrap().to_string();
        assert!(engine.has_solution(&format!("siblings({y}, {x})")).unwrap());
    }

    #[test]
    fn aunts_exist_with_default_seed() {
        let (program, _) = family_program(&FamilyConfig::default());
        let mut engine = Engine::new();
        engine.load(&program);
        assert!(engine.query("aunt(X, Y)").unwrap().succeeded());
        assert!(engine.query("cousins(X, Y)").unwrap().succeeded());
        assert!(engine.query("brother(X, Y)").unwrap().succeeded());
    }

    #[test]
    fn smaller_trees_scale_down() {
        let config = FamilyConfig {
            seed: 3,
            couples: 5,
            founder_couples: 2,
            girls: 3,
            boys: 2,
            mother_facts: 9,
        };
        let (program, people) = family_program(&config);
        assert_eq!(people.len(), 15);
        assert_eq!(program.clauses_of(PredId::new("mother", 2)).len(), 9);
    }
}
