//! `kmbench`: "a substantial program: a theorem-prover running a set of
//! benchmark problems" (Table IV).
//!
//! The original is unavailable; this module provides a compact Horn-clause
//! prover over an object-level formula encoding (`and/2`, `or/2`,
//! `imp/2`-via-rules, atoms) plus a seeded generator of benchmark
//! problems. Like the original it is **largely deterministic** with deep
//! recursion, so the reorderer finds little to improve — the paper reports
//! only 1.14× — which is exactly the negative result the benchmark exists
//! to reproduce.

use prolog_syntax::{parse_program, SourceProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Problem-set parameters.
#[derive(Debug, Clone)]
pub struct KmbenchConfig {
    pub seed: u64,
    /// Number of propositional atoms.
    pub atoms: usize,
    /// Number of Horn rules `rule(Head, Body)`.
    pub rules: usize,
    /// Number of base axioms.
    pub axioms: usize,
    /// Number of benchmark problems (formulas to prove).
    pub problems: usize,
}

impl Default for KmbenchConfig {
    fn default() -> Self {
        // Sized so the whole benchmark costs on the order of the paper's
        // 161,616 calls: proof search in the naive prover is exponential
        // in the rule-chain depth, so these knobs matter.
        KmbenchConfig {
            seed: 23,
            atoms: 18,
            rules: 22,
            axioms: 5,
            problems: 30,
        }
    }
}

/// The prover and driver, in Prolog.
pub fn prover_rules() -> &'static str {
    "
    % ---- the prover ----
    prove(true).
    prove(and(A, B)) :- prove(A), prove(B).
    prove(or(A, _)) :- prove(A).
    prove(or(_, B)) :- prove(B).
    prove(F) :- axiom(F).
    prove(F) :- rule(F, Body), prove(Body).

    % ---- the benchmark driver ----
    % Written test-last, the one reorderable clause of the program.
    run_problem(Id) :- problem(Id, F, C), prove(F), hard_enough(C).
    hard_enough(medium).
    hard_enough(hard).

    run_all :- problem(Id, _, _), run_problem(Id), fail.
    run_all.
    "
}

/// Generates the rule base, axioms, and problems.
pub fn kmbench_program(config: &KmbenchConfig) -> SourceProgram {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut src = String::from(prover_rules());
    let atom = |i: usize| format!("a{i}");

    // Axioms over the lowest-numbered atoms.
    for i in 0..config.axioms {
        let _ = writeln!(src, "axiom({}).", atom(i));
    }
    // Horn rules: head strictly higher-numbered than its body atoms, so the
    // rule graph is acyclic and proofs terminate.
    for _ in 0..config.rules {
        let head = rng.gen_range(config.axioms..config.atoms);
        let b1 = rng.gen_range(0..head);
        let b2 = rng.gen_range(0..head);
        let body = if rng.gen_bool(0.3) {
            format!("or({}, {})", atom(b1), atom(b2))
        } else {
            format!("and({}, {})", atom(b1), atom(b2))
        };
        let _ = writeln!(src, "rule({}, {}).", atom(head), body);
    }
    // Problems: random and/or formulas of depth 2-3 over all atoms, with a
    // difficulty class.
    for p in 0..config.problems {
        let f = random_formula(&mut rng, config.atoms, 3);
        // Mostly medium/hard: the driver's reordered `hard_enough` test
        // only skips the occasional easy problem, keeping the overall gain
        // modest, as in the paper (1.14x).
        let class = match p % 6 {
            0 => "easy",
            1 | 2 => "medium",
            _ => "hard",
        };
        let _ = writeln!(src, "problem(q{p}, {f}, {class}).");
    }
    parse_program(&src).expect("kmbench program parses")
}

fn random_formula(rng: &mut StdRng, atoms: usize, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.4) {
        return format!("a{}", rng.gen_range(0..atoms));
    }
    let l = random_formula(rng, atoms, depth - 1);
    let r = random_formula(rng, atoms, depth - 1);
    if rng.gen_bool(0.5) {
        format!("and({l}, {r})")
    } else {
        format!("or({l}, {r})")
    }
}

/// The problem ids, for per-problem queries.
pub fn kmbench_problem_ids(config: &KmbenchConfig) -> Vec<String> {
    (0..config.problems).map(|p| format!("q{p}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_engine::Engine;
    use prolog_syntax::PredId;

    #[test]
    fn generated_program_has_the_right_shape() {
        let config = KmbenchConfig::default();
        let p = kmbench_program(&config);
        assert_eq!(p.clauses_of(PredId::new("axiom", 1)).len(), config.axioms);
        assert_eq!(p.clauses_of(PredId::new("rule", 2)).len(), config.rules);
        assert_eq!(
            p.clauses_of(PredId::new("problem", 3)).len(),
            config.problems
        );
    }

    #[test]
    fn axioms_are_provable() {
        let mut e = Engine::new();
        e.load(&kmbench_program(&KmbenchConfig::default()));
        assert!(e.has_solution("prove(a0)").unwrap());
        assert!(e.has_solution("prove(and(a0, a1))").unwrap());
        assert!(e.has_solution("prove(or(a0, a99))").unwrap());
    }

    #[test]
    fn unprovable_formulas_fail_finitely() {
        let mut e = Engine::new();
        e.load(&kmbench_program(&KmbenchConfig::default()));
        // a999 has no axiom and no rule: must fail, not loop.
        assert!(!e.has_solution("prove(a999)").unwrap());
    }

    #[test]
    fn run_all_terminates() {
        let mut e = Engine::new();
        e.load(&kmbench_program(&KmbenchConfig::default()));
        let out = e.query("run_all").unwrap();
        assert!(out.succeeded());
        assert!(
            out.counters.calls() > 100,
            "the benchmark should do real work"
        );
    }

    #[test]
    fn some_problems_are_provable_and_hard_enough() {
        let config = KmbenchConfig::default();
        let mut e = Engine::new();
        e.load(&kmbench_program(&config));
        let solved = e.query("run_problem(Id)").unwrap();
        assert!(solved.succeeded(), "at least one problem should pass");
        // prove/1 can succeed many ways per problem: count distinct ids.
        let mut ids: Vec<String> = solved
            .solutions
            .iter()
            .map(|s| s.get("Id").unwrap().to_string())
            .collect();
        ids.sort();
        ids.dedup();
        assert!(
            ids.len() < config.problems,
            "not every problem should pass (some are easy-class or unprovable)"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = kmbench_program(&KmbenchConfig::default());
        let b = kmbench_program(&KmbenchConfig::default());
        assert_eq!(
            prolog_syntax::pretty::program_to_string(&a),
            prolog_syntax::pretty::program_to_string(&b)
        );
    }
}
