//! Named program texts for load generation and cross-tool comparison.
//!
//! The `reordd-bench` client, the server smoke tests, and ad-hoc CLI
//! sessions all want "the Table IV workloads as plain Prolog text". This
//! module renders each benchmark program once, through the same pretty
//! printer the reorderer emits with, so every consumer hashes and
//! compares the exact same bytes.

use crate::corporate::{corporate_program, CorporateConfig};
use crate::family::{family_program, FamilyConfig};
use crate::geography::{geography, GeographyConfig};
use crate::kmbench::{kmbench_program, KmbenchConfig};
use crate::puzzles;
use prolog_syntax::pretty::program_to_string;

/// One benchmark program, rendered to text.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Stable name (`family`, `corporate`, `geography`, `kmbench`,
    /// `p58`, `meal`, `team`).
    pub name: &'static str,
    /// The program, pretty-printed with the emitter's printer.
    pub text: String,
}

/// Every evaluation workload (the paper's Tables II–IV plus the Warren
/// geography baseline), at default configuration, in a fixed order.
pub fn corpus() -> Vec<CorpusProgram> {
    let entry = |name, text| CorpusProgram { name, text };
    vec![
        entry(
            "family",
            program_to_string(&family_program(&FamilyConfig::default()).0),
        ),
        entry(
            "corporate",
            program_to_string(&corporate_program(&CorporateConfig::default()).0),
        ),
        entry(
            "geography",
            program_to_string(&geography(&GeographyConfig::default()).program),
        ),
        entry(
            "kmbench",
            program_to_string(&kmbench_program(&KmbenchConfig::default())),
        ),
        entry("p58", program_to_string(&puzzles::p58_program())),
        entry("meal", program_to_string(&puzzles::meal_program())),
        entry("team", program_to_string(&puzzles::team_program())),
    ]
}

/// The named corpus program, if any.
pub fn corpus_program(name: &str) -> Option<CorpusProgram> {
    corpus().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_stable_and_reparses() {
        let programs = corpus();
        let names: Vec<&str> = programs.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "family",
                "corporate",
                "geography",
                "kmbench",
                "p58",
                "meal",
                "team"
            ]
        );
        for p in &programs {
            let parsed = prolog_syntax::parse_program(&p.text)
                .unwrap_or_else(|e| panic!("{} does not reparse: {e}", p.name));
            // Rendering is a fixed point: text -> parse -> text is identity.
            assert_eq!(
                program_to_string(&parsed),
                p.text,
                "{} rendering is not a pretty-printer fixed point",
                p.name
            );
        }
        // Seeded generators: two calls agree byte for byte.
        let again = corpus();
        for (a, b) in programs.iter().zip(&again) {
            assert_eq!(a.text, b.text, "{} is not deterministic", a.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(corpus_program("family").is_some());
        assert!(corpus_program("nope").is_none());
    }
}
