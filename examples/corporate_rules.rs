//! The Table III experiment as an example: reorder the corporate-database
//! rules and print a before/after listing next to measured costs — the
//! "database administrator" use case the paper's venue (ICDE) cares about.
//!
//! Run with: `cargo run --release -p reorder --example corporate_rules`

use prolog_engine::Engine;
use prolog_syntax::pretty::clause_to_string;
use prolog_syntax::PredId;
use prolog_workloads::corporate::{corporate_program, CorporateConfig};
use reorder::{ReorderConfig, Reorderer};

fn main() {
    let (program, ids) = corporate_program(&CorporateConfig::default());
    println!("corporate database with {} employees\n", ids.len());

    let result = Reorderer::new(&program, ReorderConfig::default()).run();

    for (name, arity) in [("benefits", 2), ("maternity", 2), ("tax", 2)] {
        let pred = PredId::new(name, arity);
        println!("--- {pred} ---");
        println!("original clauses:");
        for c in program.clauses_of(pred) {
            println!("  {}", clause_to_string(c));
        }
        println!("reordered versions:");
        let mut shown: Vec<String> = Vec::new();
        if let Some(pr) = result.report.predicate(pred) {
            for m in &pr.modes {
                if shown.contains(&m.version) {
                    continue;
                }
                shown.push(m.version.clone());
                println!("  % serving mode {} (and any mode merged with it)", m.mode);
                for c in result
                    .program
                    .clauses_of(PredId::new(m.version.as_str(), arity))
                {
                    println!("  {}", clause_to_string(c));
                }
            }
        }
        println!();
    }

    // Measure the headline queries.
    for query in ["benefits(E, B)", "maternity(E, N)", "tax(E, T)"] {
        let mut orig = Engine::new();
        orig.load(&program);
        let a = orig.query(query).expect("query runs");
        let mut re = Engine::new();
        re.load(&result.program);
        let b = re.query(query).expect("query runs");
        assert_eq!(a.solution_set(), b.solution_set(), "set-equivalence");
        println!(
            "{query:<20} {} -> {} user calls ({:.2}x), {} answers",
            a.counters.user_calls,
            b.counters.user_calls,
            a.counters.user_calls as f64 / b.counters.user_calls as f64,
            a.solutions.len()
        );
    }
}
