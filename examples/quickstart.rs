//! Quickstart: reorder the paper's §I-D grandmother example and watch the
//! call counts drop.
//!
//! Run with: `cargo run -p reorder --example quickstart`

use prolog_engine::Engine;
use prolog_syntax::parse_program;
use prolog_syntax::pretty::program_to_string;
use reorder::{ReorderConfig, Reorderer};

fn main() {
    // The paper's motivating example: grandmother/2 first finds a
    // grandparent pair, then rejects about half of them with female/1 —
    // the cheap, instantiating test should run first.
    let src = "
        female(W) :- girl(W).
        female(W) :- wife(_, W).
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
        grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
        parent(C, P) :- mother(C, P).
        parent(C, P) :- mother(C, M), wife(P, M).

        girl(ann). girl(amy). girl(ada).
        wife(hal, wen). wife(hugh, willa). wife(henk, wanda). wife(huck, wren).
        mother(carl, wen).   mother(cora, wen).
        mother(chad, willa). mother(cleo, wanda).
        mother(hal, meg).    mother(wen, meg).
        mother(hugh, nell).  mother(willa, nora).
        girl(meg). girl(nell). girl(nora).
    ";
    let program = parse_program(src).expect("program parses");

    // 1. Reorder.
    let result = Reorderer::new(&program, ReorderConfig::default()).run();
    println!("=== reorderer decisions ===\n{}", result.report);
    println!(
        "=== reordered program ===\n{}",
        program_to_string(&result.program)
    );

    // 2. Measure both on the same query.
    let mut original = Engine::new();
    original.load(&program);
    let before = original.query("grandmother(X, Y)").expect("query runs");

    let mut reordered = Engine::new();
    reordered.load(&result.program);
    let after = reordered.query("grandmother(X, Y)").expect("query runs");

    println!("=== measured cost of grandmother(X, Y) ===");
    println!("original : {}", before.counters);
    println!("reordered: {}", after.counters);
    println!(
        "speedup  : {:.2}x (user predicate calls)",
        before.counters.user_calls as f64 / after.counters.user_calls as f64
    );

    // 3. Set-equivalence (§II): same answers, possibly different order.
    assert_eq!(before.solution_set(), after.solution_set());
    println!("\nsolution sets are identical (set-equivalence holds).");
}
