//! The Table II experiment in miniature: generate the paper's 55-person
//! family tree, reorder it, and compare per-mode call counts for a chosen
//! predicate.
//!
//! Run with:
//! `cargo run --release -p reorder --example family_tree_speedup [predicate]`

use prolog_analysis::Mode;
use prolog_engine::Engine;
use prolog_workloads::family::{family_program, FamilyConfig};
use prolog_workloads::queries::{mode_queries, QuerySpec};
use reorder::{ReorderConfig, Reorderer};

fn main() {
    let pred = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "aunt".to_string());
    let config = FamilyConfig::default();
    let (program, people) = family_program(&config);
    println!(
        "family tree: {} people, {} girl/1, {} wife/2, {} mother/2",
        people.len(),
        config.girls,
        config.couples,
        config.mother_facts
    );

    let result = Reorderer::new(&program, ReorderConfig::default()).run();
    if let Some(report) = result
        .report
        .predicate(prolog_syntax::PredId::new(pred.as_str(), 2))
    {
        println!("\npredicted improvements for {pred}/2:");
        for m in &report.modes {
            println!(
                "  mode {}: predicted {:.2}x (version {})",
                m.mode,
                m.predicted_speedup(),
                m.version
            );
        }
    }

    println!("\nmeasured user-predicate calls for {pred}/2 (every instantiation per mode):");
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "mode", "original", "reordered", "ratio"
    );
    for mode_s in ["--", "-+", "+-", "++"] {
        let spec = QuerySpec {
            name: pred.clone(),
            mode: Mode::parse(mode_s).unwrap(),
            universe: people.clone(),
        };
        let queries = mode_queries(&spec);
        let run = |p: &prolog_syntax::SourceProgram| {
            let mut e = Engine::new();
            e.load(p);
            let mut calls = 0u64;
            for q in &queries {
                let names: Vec<String> =
                    (0..q.variables().len()).map(|i| format!("V{i}")).collect();
                calls += e
                    .query_term(q, &names, usize::MAX)
                    .expect("runs")
                    .counters
                    .user_calls;
            }
            calls
        };
        let a = run(&program);
        let b = run(&result.program);
        println!(
            "{:<8} {:>10} {:>10} {:>8.2}",
            mode_s,
            a,
            b,
            a as f64 / b as f64
        );
    }
}
