//! Mode analysis walkthrough (paper §V): legal modes, inference, and the
//! paper's own `delete/3` and `build/4` examples.
//!
//! Run with: `cargo run -p reorder --example mode_inference`

use prolog_analysis::{Declarations, Mode, ModeInference};
use prolog_syntax::{parse_program, PredId};
use reorder::ModeOracle;

fn main() {
    // §V-B: delete/3 — fine with a bound second or third argument,
    // infinite on (+,-,-).
    let delete = parse_program(
        "
        delete(X, [X|Y], Y).
        delete(U, [X|Y], [X|V]) :- delete(U, Y, V).
        ",
    )
    .unwrap();
    println!("=== delete/3 (recursive: the paper says declare it) ===");
    let inference = ModeInference::new(&delete);
    for mode_s in ["?+?", "+?+", "--+", "+--"] {
        let mode = Mode::parse(mode_s).unwrap();
        let summary = inference.call(PredId::new("delete", 3), &mode);
        println!(
            "  call {}  ->  output {} ({})",
            mode,
            summary.output,
            if summary.clean {
                "abstractly clean"
            } else {
                "NOT clean"
            }
        );
    }
    println!(
        "  note: cleanliness is necessary, not sufficient — termination in\n\
         \x20 mode (+,-,-) is the programmer's responsibility (§V-B), which\n\
         \x20 is why recursive predicates want `:- legal_mode(...)`."
    );

    // §V-E: inference filters illegal +/- input modes of a non-recursive
    // predicate automatically.
    let inc = parse_program("inc(X, Y) :- Y is X + 1.").unwrap();
    let decls = Declarations::from_program(&inc);
    let oracle = ModeOracle::new(&inc, &decls);
    println!("\n=== inc/2 — inferred legal +/- modes ===");
    for mode in oracle.legal_plus_minus_modes(PredId::new("inc", 2)) {
        println!("  {} is legal", mode);
    }
    let illegal = Mode::parse("--").unwrap();
    assert!(oracle.call(PredId::new("inc", 2), &illegal).is_none());
    println!("  (-,-) correctly rejected: `is/2` demands its expression");

    // §V-D: the build/4 example — partial structures (`?` outputs) mean
    // the appends cannot be hoisted ahead of the transforms that bind
    // their inputs; the scanner rejects the illegal order.
    let build = parse_program(
        "
        :- legal_mode(transform(+, -), transform(+, +)).
        :- recursive(transform/2).
        :- legal_mode(app(+, ?, ?), app(+, ?, ?)).
        :- legal_mode(app(?, ?, +), app(?, ?, +)).
        :- recursive(app/3).
        app([], X, X).
        app([H|T], Y, [H|Z]) :- app(T, Y, Z).
        transform([], []).
        transform([X|Xs], [f(X)|Ys]) :- transform(Xs, Ys).
        build(L1, L2, L3, L4) :-
            transform(L2, L2a), transform(L3, L3a),
            app(L1, L2a, L2b), app(L2b, L3a, L4).
        ",
    )
    .unwrap();
    let decls = Declarations::from_program(&build);
    let oracle = ModeOracle::new(&build, &decls);
    println!("\n=== build/4 (§V-D) ===");
    let mode = Mode::parse("+++-").unwrap();
    match oracle.call(PredId::new("build", 4), &mode) {
        Some(out) => println!("  build{} is legal; output {}", mode, out),
        None => println!("  build{} rejected", mode),
    }
    let result = reorder::Reorderer::new(&build, reorder::ReorderConfig::default()).run();
    match result.report.predicate(PredId::new("build", 4)) {
        Some(pr) if pr.skipped.is_some() => {
            println!(
                "  the reorderer leaves build/4 untouched: {}",
                pr.skipped.as_deref().unwrap()
            );
            println!(
                "  (this is the §V-D dilemma verbatim: with `?` outputs for the\n\
                 \x20  partial lists, no order of the appends can be *proven* legal;\n\
                 \x20  the paper's remedy is run-time nonvar tests or stronger\n\
                 \x20  declarations — `:- legal_mode(app(?, ?, ?), app(?, ?, ?))`\n\
                 \x20  would accept the program as-is.)"
            );
        }
        Some(pr) => {
            println!("  legal modes found: the reorderer emits tuned versions:");
            for m in &pr.modes {
                println!("    mode {} served by {}:", m.mode, m.version);
                for c in result
                    .program
                    .clauses_of(PredId::new(m.version.as_str(), 4))
                {
                    println!("      {}", prolog_syntax::pretty::clause_to_string(c));
                }
            }
            println!(
                "  note: only the fully-instantiated modes are provably legal —\n\
                 \x20 with `?` outputs for the partial lists (§V-D), no other order\n\
                 \x20 (nor entry mode) can be proven safe; the paper's remedy is\n\
                 \x20 run-time nonvar tests or stronger declarations."
            );
        }
        None => println!("  build/4 missing from the report (unexpected)"),
    }
}
