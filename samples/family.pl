female(X) :- girl(X).
female(X) :- wife(_A1, X).

male(X) :- \+ female(X).

father(X, Y) :- mother(X, M), wife(Y, M).

parent(X, Y) :- mother(X, Y).
parent(X, Y) :- father(X, Y).

married(X, Y) :- wife(X, Y).
married(X, Y) :- wife(Y, X).

siblings(X, Y) :- mother(X, M), mother(Y, M), unequal(X, Y).

sister(X, Y) :- siblings(X, Y), female(Y).

brother(X, Y) :- siblings(X, Y), male(Y).

grandmother(X, Y) :- parent(X, Z), mother(Z, Y).

cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, Z).
cousins(X, Y) :- parent(X, Z), parent(Y, W), siblings(W, V), married(V, Z).

aunt(X, Y) :- parent(X, P), sister(P, Y).
aunt(X, Y) :- parent(X, P), brother(P, B), wife(B, Y).

unequal(X, Y) :- X \== Y.

wife(h1, w1).
wife(h2, w2).
wife(h3, w3).
wife(h4, w4).
wife(h5, w5).
wife(h6, w6).
wife(h7, w7).
wife(h8, w8).
wife(h9, w9).
wife(h10, w10).
wife(h11, w11).
wife(h12, w12).
wife(h13, w13).
wife(h14, w14).
wife(h15, w15).
wife(h16, w16).
wife(h17, w17).
wife(h18, w18).
wife(h19, w19).

girl(g1).
girl(g2).
girl(g3).
girl(g4).
girl(g5).
girl(g6).
girl(g7).
girl(g8).
girl(g9).
girl(g10).

mother(g1, w8).
mother(g2, w19).
mother(g3, w14).
mother(g4, w19).
mother(g5, w18).
mother(g6, w13).
mother(g7, w18).
mother(g8, w19).
mother(g9, w15).
mother(g10, w10).
mother(b1, w18).
mother(b2, w13).
mother(b3, w11).
mother(b4, w16).
mother(b5, w19).
mother(b6, w12).
mother(b7, w19).
mother(w7, w1).
mother(h12, w4).
mother(h10, w1).
mother(w14, w1).
mother(w16, w3).
mother(h19, w6).
mother(h9, w3).
mother(w8, w6).
mother(w19, w1).
mother(h16, w1).
mother(h7, w5).
mother(w11, w1).
mother(h13, w6).
mother(h17, w3).
mother(h14, w6).
mother(h11, w1).
mother(w9, w3).
