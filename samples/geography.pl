country(c01).

capital(c01, cap_c01).

population(c01, 770).

continent(c01, europe).

country(c02).

capital(c02, cap_c02).

population(c02, 1084).

continent(c02, asia).

country(c03).

capital(c03, cap_c03).

population(c03, 1293).

continent(c03, africa).

country(c04).

capital(c04, cap_c04).

population(c04, 388).

continent(c04, america).

country(c05).

capital(c05, cap_c05).

population(c05, 73).

continent(c05, oceania).

country(c06).

capital(c06, cap_c06).

population(c06, 685).

continent(c06, europe).

country(c07).

capital(c07, cap_c07).

population(c07, 951).

continent(c07, asia).

country(c08).

capital(c08, cap_c08).

population(c08, 284).

continent(c08, africa).

country(c09).

capital(c09, cap_c09).

population(c09, 1193).

continent(c09, america).

country(c10).

capital(c10, cap_c10).

population(c10, 1060).

continent(c10, oceania).

country(c11).

capital(c11, cap_c11).

population(c11, 1242).

continent(c11, europe).

country(c12).

capital(c12, cap_c12).

population(c12, 864).

continent(c12, asia).

country(c13).

capital(c13, cap_c13).

population(c13, 329).

continent(c13, africa).

country(c14).

capital(c14, cap_c14).

population(c14, 247).

continent(c14, america).

country(c15).

capital(c15, cap_c15).

population(c15, 124).

continent(c15, oceania).

country(c16).

capital(c16, cap_c16).

population(c16, 125).

continent(c16, europe).

country(c17).

capital(c17, cap_c17).

population(c17, 700).

continent(c17, asia).

country(c18).

capital(c18, cap_c18).

population(c18, 1249).

continent(c18, africa).

country(c19).

capital(c19, cap_c19).

population(c19, 787).

continent(c19, america).

country(c20).

capital(c20, cap_c20).

population(c20, 73).

continent(c20, oceania).

country(c21).

capital(c21, cap_c21).

population(c21, 1003).

continent(c21, europe).

country(c22).

capital(c22, cap_c22).

population(c22, 711).

continent(c22, asia).

country(c23).

capital(c23, cap_c23).

population(c23, 1159).

continent(c23, africa).

country(c24).

capital(c24, cap_c24).

population(c24, 34).

continent(c24, america).

country(c25).

capital(c25, cap_c25).

population(c25, 944).

continent(c25, oceania).

country(c26).

capital(c26, cap_c26).

population(c26, 967).

continent(c26, europe).

country(c27).

capital(c27, cap_c27).

population(c27, 1392).

continent(c27, asia).

country(c28).

capital(c28, cap_c28).

population(c28, 202).

continent(c28, africa).

country(c29).

capital(c29, cap_c29).

population(c29, 180).

continent(c29, america).

country(c30).

capital(c30, cap_c30).

population(c30, 1424).

continent(c30, oceania).

country(c31).

capital(c31, cap_c31).

population(c31, 1207).

continent(c31, europe).

country(c32).

capital(c32, cap_c32).

population(c32, 483).

continent(c32, asia).

country(c33).

capital(c33, cap_c33).

population(c33, 1169).

continent(c33, africa).

country(c34).

capital(c34, cap_c34).

population(c34, 338).

continent(c34, america).

country(c35).

capital(c35, cap_c35).

population(c35, 958).

continent(c35, oceania).

country(c36).

capital(c36, cap_c36).

population(c36, 972).

continent(c36, europe).

country(c37).

capital(c37, cap_c37).

population(c37, 703).

continent(c37, asia).

country(c38).

capital(c38, cap_c38).

population(c38, 1466).

continent(c38, africa).

country(c39).

capital(c39, cap_c39).

population(c39, 742).

continent(c39, america).

country(c40).

capital(c40, cap_c40).

population(c40, 547).

continent(c40, oceania).

borders(c23, c36).
borders(c36, c23).
borders(c21, c31).
borders(c31, c21).
borders(c07, c25).
borders(c25, c07).
borders(c15, c32).
borders(c32, c15).
borders(c14, c24).
borders(c24, c14).
borders(c11, c06).
borders(c06, c11).
borders(c29, c21).
borders(c21, c29).
borders(c39, c14).
borders(c14, c39).
borders(c29, c19).
borders(c19, c29).
borders(c03, c26).
borders(c26, c03).
borders(c19, c16).
borders(c16, c19).
borders(c19, c27).
borders(c27, c19).
borders(c20, c30).
borders(c30, c20).
borders(c17, c38).
borders(c38, c17).
borders(c34, c06).
borders(c06, c34).
borders(c03, c05).
borders(c05, c03).
borders(c25, c38).
borders(c38, c25).
borders(c13, c02).
borders(c02, c13).
borders(c02, c14).
borders(c14, c02).
borders(c01, c30).
borders(c30, c01).
borders(c06, c01).
borders(c01, c06).
borders(c06, c13).
borders(c13, c06).
borders(c22, c07).
borders(c07, c22).
borders(c27, c36).
borders(c36, c27).
borders(c08, c07).
borders(c07, c08).
borders(c21, c30).
borders(c30, c21).
borders(c28, c20).
borders(c20, c28).
borders(c18, c05).
borders(c05, c18).
borders(c16, c39).
borders(c39, c16).
borders(c16, c38).
borders(c38, c16).
borders(c07, c01).
borders(c01, c07).
borders(c29, c34).
borders(c34, c29).
borders(c04, c29).
borders(c29, c04).
borders(c39, c29).
borders(c29, c39).
borders(c40, c01).
borders(c01, c40).
borders(c38, c12).
borders(c12, c38).
borders(c30, c06).
borders(c06, c30).
borders(c14, c06).
borders(c06, c14).
borders(c15, c06).
borders(c06, c15).
borders(c35, c31).
borders(c31, c35).
borders(c14, c26).
borders(c26, c14).
borders(c40, c27).
borders(c27, c40).
borders(c30, c39).
borders(c39, c30).
borders(c19, c30).
borders(c30, c19).
borders(c24, c33).
borders(c33, c24).
borders(c08, c32).
borders(c32, c08).
borders(c10, c36).
borders(c36, c10).
borders(c16, c21).
borders(c21, c16).
borders(c22, c05).
borders(c05, c22).
borders(c26, c16).
borders(c16, c26).
borders(c18, c16).
borders(c16, c18).
borders(c08, c21).
borders(c21, c08).
borders(c30, c38).
borders(c38, c30).
borders(c29, c38).
borders(c38, c29).
borders(c27, c32).
borders(c32, c27).
borders(c27, c07).
borders(c07, c27).
borders(c04, c14).
borders(c14, c04).
borders(c17, c33).
borders(c33, c17).
borders(c34, c35).
borders(c35, c34).
borders(c35, c23).
borders(c23, c35).
borders(c12, c22).
borders(c22, c12).
borders(c26, c09).
borders(c09, c26).
borders(c14, c09).
borders(c09, c14).
borders(c29, c25).
borders(c25, c29).
borders(c20, c34).
borders(c34, c20).
borders(c29, c28).
borders(c28, c29).
borders(c09, c24).
borders(c24, c09).
borders(c33, c26).
borders(c26, c33).
borders(c23, c07).
borders(c07, c23).
borders(c24, c17).
borders(c17, c24).
borders(c25, c12).
borders(c12, c25).
borders(c35, c33).
borders(c33, c35).
borders(c32, c25).
borders(c25, c32).
borders(c29, c12).
borders(c12, c29).
borders(c11, c15).
borders(c15, c11).
borders(c14, c18).
borders(c18, c14).
borders(c26, c40).
borders(c40, c26).
borders(c25, c19).
borders(c19, c25).
borders(c33, c39).
borders(c39, c33).
borders(c14, c19).
borders(c19, c14).
borders(c30, c04).
borders(c04, c30).
borders(c18, c04).
borders(c04, c18).
borders(c22, c39).
borders(c39, c22).
borders(c36, c11).
borders(c11, c36).
borders(c15, c19).
borders(c19, c15).
borders(c35, c01).
borders(c01, c35).
borders(c21, c03).
borders(c03, c21).
borders(c09, c33).
borders(c33, c09).
borders(c23, c04).
borders(c04, c23).
borders(c24, c07).
borders(c07, c24).
borders(c06, c07).
borders(c07, c06).
borders(c12, c06).
borders(c06, c12).
borders(c23, c18).
borders(c18, c23).
borders(c05, c08).
borders(c08, c05).
borders(c20, c22).
borders(c22, c20).
borders(c31, c28).
borders(c28, c31).
borders(c01, c02).
borders(c02, c01).
borders(c23, c29).
borders(c29, c23).
borders(c30, c36).
borders(c36, c30).
borders(c20, c19).
borders(c19, c20).
