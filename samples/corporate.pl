benefits(E, full) :- employee(E), years(E, Y), Y >= 10, position(E, manager).
benefits(E, standard) :- employee(E), years(E, Y), Y >= 3, gender(E, _A2).
benefits(E, probationary) :- employee(E), years(E, Y), Y < 3.

pay(E, N, P) :- name(E, N), salary(E, S), years(E, Y), P is S + 100 * Y.

maternity(E, N) :- employee(E), name(E, N), years(E, Y), Y >= 1, gender(E, female).

average_pay(D, A) :- dept_name(D), findall(S, dept_salary(D, S), L), sum_list(L, T), length(L, N), N > 0, A is T // N.

dept_salary(D, S) :- dept(E, D), salary(E, S).

dept_name(sales).
dept_name(engineering).
dept_name(accounting).
dept_name(hr).
dept_name(legal).
dept_name(support).
dept_name(research).
dept_name(ops).

sum_list([], 0).
sum_list([X|Xs], T) :- sum_list(Xs, T0), T is T0 + X.

tax(E, T) :- employee(E), years(E, Y), Y >= 0, salary(E, S), S > 45000, T is S // 4.
tax(E, T) :- employee(E), salary(E, S), S =< 45000, T is S // 5.

employee(e1).

name(e1, jane).

gender(e1, female).

dept(e1, legal).

years(e1, 6).

salary(e1, 37000).

position(e1, staff).

employee(e2).

name(e2, yolanda).

gender(e2, female).

dept(e2, engineering).

years(e2, 25).

salary(e2, 69500).

position(e2, staff).

employee(e3).

name(e3, gina).

gender(e3, male).

dept(e3, research).

years(e3, 15).

salary(e3, 76500).

position(e3, staff).

employee(e4).

name(e4, grace).

gender(e4, male).

dept(e4, support).

years(e4, 19).

salary(e4, 44500).

position(e4, staff).

employee(e5).

name(e5, mona).

gender(e5, female).

dept(e5, accounting).

years(e5, 13).

salary(e5, 34500).

position(e5, staff).

employee(e6).

name(e6, ursula).

gender(e6, female).

dept(e6, ops).

years(e6, 27).

salary(e6, 58500).

position(e6, staff).

employee(e7).

name(e7, fred).

gender(e7, female).

dept(e7, hr).

years(e7, 11).

salary(e7, 29500).

position(e7, staff).

employee(e8).

name(e8, mona).

gender(e8, male).

dept(e8, sales).

years(e8, 26).

salary(e8, 42000).

position(e8, staff).

employee(e9).

name(e9, trent).

gender(e9, male).

dept(e9, legal).

years(e9, 28).

salary(e9, 80000).

position(e9, staff).

employee(e10).

name(e10, wendy).

gender(e10, female).

dept(e10, hr).

years(e10, 29).

salary(e10, 57500).

position(e10, staff).

employee(e11).

name(e11, judy).

gender(e11, male).

dept(e11, engineering).

years(e11, 22).

salary(e11, 58000).

position(e11, staff).

employee(e12).

name(e12, erin).

gender(e12, female).

dept(e12, support).

years(e12, 8).

salary(e12, 27000).

position(e12, staff).

employee(e13).

name(e13, wendy).

gender(e13, male).

dept(e13, ops).

years(e13, 1).

salary(e13, 35500).

position(e13, staff).

employee(e14).

name(e14, laura).

gender(e14, male).

dept(e14, ops).

years(e14, 20).

salary(e14, 52000).

position(e14, staff).

employee(e15).

name(e15, heidi).

gender(e15, male).

dept(e15, accounting).

years(e15, 2).

salary(e15, 29000).

position(e15, staff).

employee(e16).

name(e16, trent).

gender(e16, female).

dept(e16, ops).

years(e16, 26).

salary(e16, 52000).

position(e16, staff).

employee(e17).

name(e17, laura).

gender(e17, male).

dept(e17, accounting).

years(e17, 19).

salary(e17, 37500).

position(e17, staff).

employee(e18).

name(e18, peggy).

gender(e18, male).

dept(e18, ops).

years(e18, 6).

salary(e18, 31000).

position(e18, staff).

employee(e19).

name(e19, sybil).

gender(e19, male).

dept(e19, legal).

years(e19, 5).

salary(e19, 75500).

position(e19, manager).

employee(e20).

name(e20, liam).

gender(e20, male).

dept(e20, engineering).

years(e20, 28).

salary(e20, 92000).

position(e20, staff).

employee(e21).

name(e21, ella).

gender(e21, female).

dept(e21, hr).

years(e21, 2).

salary(e21, 49000).

position(e21, staff).

employee(e22).

name(e22, carol).

gender(e22, female).

dept(e22, legal).

years(e22, 16).

salary(e22, 36000).

position(e22, staff).

employee(e23).

name(e23, mallory).

gender(e23, female).

dept(e23, engineering).

years(e23, 3).

salary(e23, 64500).

position(e23, staff).

employee(e24).

name(e24, ken).

gender(e24, male).

dept(e24, hr).

years(e24, 7).

salary(e24, 75500).

position(e24, staff).

employee(e25).

name(e25, yolanda).

gender(e25, female).

dept(e25, support).

years(e25, 4).

salary(e25, 29000).

position(e25, staff).

employee(e26).

name(e26, alice).

gender(e26, female).

dept(e26, support).

years(e26, 24).

salary(e26, 86000).

position(e26, staff).

employee(e27).

name(e27, rupert).

gender(e27, female).

dept(e27, support).

years(e27, 19).

salary(e27, 45500).

position(e27, manager).

employee(e28).

name(e28, kate).

gender(e28, female).

dept(e28, sales).

years(e28, 23).

salary(e28, 34500).

position(e28, staff).

employee(e29).

name(e29, mallory).

gender(e29, male).

dept(e29, legal).

years(e29, 29).

salary(e29, 80500).

position(e29, staff).

employee(e30).

name(e30, alice).

gender(e30, female).

dept(e30, hr).

years(e30, 21).

salary(e30, 59500).

position(e30, manager).

employee(e31).

name(e31, alice).

gender(e31, male).

dept(e31, support).

years(e31, 8).

salary(e31, 32000).

position(e31, staff).

employee(e32).

name(e32, carol).

gender(e32, male).

dept(e32, support).

years(e32, 24).

salary(e32, 73000).

position(e32, staff).

employee(e33).

name(e33, olivia).

gender(e33, female).

dept(e33, accounting).

years(e33, 26).

salary(e33, 48000).

position(e33, manager).

employee(e34).

name(e34, victor).

gender(e34, male).

dept(e34, accounting).

years(e34, 22).

salary(e34, 66000).

position(e34, staff).

employee(e35).

name(e35, ivan).

gender(e35, male).

dept(e35, hr).

years(e35, 26).

salary(e35, 79000).

position(e35, staff).

employee(e36).

name(e36, fred).

gender(e36, female).

dept(e36, research).

years(e36, 20).

salary(e36, 35000).

position(e36, staff).

employee(e37).

name(e37, heidi).

gender(e37, male).

dept(e37, legal).

years(e37, 17).

salary(e37, 39500).

position(e37, staff).

employee(e38).

name(e38, mallory).

gender(e38, male).

dept(e38, research).

years(e38, 16).

salary(e38, 42000).

position(e38, manager).

employee(e39).

name(e39, rupert).

gender(e39, male).

dept(e39, legal).

years(e39, 6).

salary(e39, 56000).

position(e39, staff).

employee(e40).

name(e40, iris).

gender(e40, male).

dept(e40, support).

years(e40, 0).

salary(e40, 48000).

position(e40, staff).

employee(e41).

name(e41, iris).

gender(e41, female).

dept(e41, legal).

years(e41, 14).

salary(e41, 69000).

position(e41, staff).

employee(e42).

name(e42, heidi).

gender(e42, female).

dept(e42, research).

years(e42, 11).

salary(e42, 32500).

position(e42, staff).

employee(e43).

name(e43, trent).

gender(e43, male).

dept(e43, hr).

years(e43, 1).

salary(e43, 71500).

position(e43, staff).

employee(e44).

name(e44, carol).

gender(e44, male).

dept(e44, sales).

years(e44, 3).

salary(e44, 78500).

position(e44, staff).

employee(e45).

name(e45, liam).

gender(e45, female).

dept(e45, ops).

years(e45, 16).

salary(e45, 68000).

position(e45, staff).

employee(e46).

name(e46, mona).

gender(e46, female).

dept(e46, sales).

years(e46, 11).

salary(e46, 81500).

position(e46, staff).

employee(e47).

name(e47, derek).

gender(e47, male).

dept(e47, hr).

years(e47, 26).

salary(e47, 48000).

position(e47, manager).

employee(e48).

name(e48, cathy).

gender(e48, male).

dept(e48, legal).

years(e48, 24).

salary(e48, 80000).

position(e48, staff).

employee(e49).

name(e49, peggy).

gender(e49, male).

dept(e49, legal).

years(e49, 15).

salary(e49, 68500).

position(e49, staff).

employee(e50).

name(e50, cathy).

gender(e50, male).

dept(e50, ops).

years(e50, 19).

salary(e50, 71500).

position(e50, staff).

employee(e51).

name(e51, judy).

gender(e51, female).

dept(e51, ops).

years(e51, 7).

salary(e51, 69500).

position(e51, staff).

employee(e52).

name(e52, erin).

gender(e52, male).

dept(e52, hr).

years(e52, 17).

salary(e52, 55500).

position(e52, staff).

employee(e53).

name(e53, xavier).

gender(e53, male).

dept(e53, support).

years(e53, 2).

salary(e53, 30000).

position(e53, staff).

employee(e54).

name(e54, ursula).

gender(e54, female).

dept(e54, sales).

years(e54, 6).

salary(e54, 82000).

position(e54, staff).

employee(e55).

name(e55, ivan).

gender(e55, male).

dept(e55, support).

years(e55, 4).

salary(e55, 63000).

position(e55, staff).

employee(e56).

name(e56, mallory).

gender(e56, female).

dept(e56, sales).

years(e56, 2).

salary(e56, 49000).

position(e56, staff).

employee(e57).

name(e57, heidi).

gender(e57, male).

dept(e57, support).

years(e57, 23).

salary(e57, 62500).

position(e57, staff).

employee(e58).

name(e58, ursula).

gender(e58, female).

dept(e58, support).

years(e58, 0).

salary(e58, 47000).

position(e58, staff).

employee(e59).

name(e59, cathy).

gender(e59, female).

dept(e59, legal).

years(e59, 6).

salary(e59, 31000).

position(e59, staff).

employee(e60).

name(e60, frank).

gender(e60, female).

dept(e60, legal).

years(e60, 12).

salary(e60, 76000).

position(e60, staff).

employee(e61).

name(e61, victor).

gender(e61, male).

dept(e61, hr).

years(e61, 14).

salary(e61, 38000).

position(e61, staff).

employee(e62).

name(e62, sybil).

gender(e62, male).

dept(e62, engineering).

years(e62, 2).

salary(e62, 64000).

position(e62, staff).

employee(e63).

name(e63, mona).

gender(e63, female).

dept(e63, support).

years(e63, 4).

salary(e63, 55000).

position(e63, staff).

employee(e64).

name(e64, mona).

gender(e64, female).

dept(e64, legal).

years(e64, 21).

salary(e64, 37500).

position(e64, staff).

employee(e65).

name(e65, iris).

gender(e65, male).

dept(e65, support).

years(e65, 26).

salary(e65, 77000).

position(e65, staff).

employee(e66).

name(e66, zach).

gender(e66, female).

dept(e66, engineering).

years(e66, 11).

salary(e66, 67500).

position(e66, staff).

employee(e67).

name(e67, iris).

gender(e67, female).

dept(e67, ops).

years(e67, 10).

salary(e67, 31000).

position(e67, manager).

employee(e68).

name(e68, laura).

gender(e68, female).

dept(e68, hr).

years(e68, 5).

salary(e68, 78500).

position(e68, staff).

employee(e69).

name(e69, nick).

gender(e69, male).

dept(e69, support).

years(e69, 19).

salary(e69, 62500).

position(e69, staff).

employee(e70).

name(e70, rupert).

gender(e70, female).

dept(e70, hr).

years(e70, 22).

salary(e70, 77000).

position(e70, staff).

employee(e71).

name(e71, judy).

gender(e71, female).

dept(e71, support).

years(e71, 4).

salary(e71, 48000).

position(e71, staff).

employee(e72).

name(e72, gina).

gender(e72, female).

dept(e72, sales).

years(e72, 17).

salary(e72, 39500).

position(e72, staff).

employee(e73).

name(e73, cathy).

gender(e73, female).

dept(e73, engineering).

years(e73, 9).

salary(e73, 44500).

position(e73, staff).

employee(e74).

name(e74, ken).

gender(e74, male).

dept(e74, support).

years(e74, 23).

salary(e74, 72500).

position(e74, staff).

employee(e75).

name(e75, peggy).

gender(e75, male).

dept(e75, research).

years(e75, 13).

salary(e75, 29500).

position(e75, staff).

employee(e76).

name(e76, nick).

gender(e76, male).

dept(e76, research).

years(e76, 29).

salary(e76, 82500).

position(e76, staff).

employee(e77).

name(e77, trent).

gender(e77, female).

dept(e77, engineering).

years(e77, 13).

salary(e77, 77500).

position(e77, manager).

employee(e78).

name(e78, alice).

gender(e78, female).

dept(e78, legal).

years(e78, 10).

salary(e78, 51000).

position(e78, staff).

employee(e79).

name(e79, trent).

gender(e79, female).

dept(e79, research).

years(e79, 28).

salary(e79, 58000).

position(e79, staff).

employee(e80).

name(e80, mallory).

gender(e80, female).

dept(e80, hr).

years(e80, 23).

salary(e80, 76500).

position(e80, staff).

employee(e81).

name(e81, wendy).

gender(e81, female).

dept(e81, legal).

years(e81, 28).

salary(e81, 54000).

position(e81, staff).

employee(e82).

name(e82, rupert).

gender(e82, male).

dept(e82, support).

years(e82, 9).

salary(e82, 70500).

position(e82, staff).

employee(e83).

name(e83, victor).

gender(e83, male).

dept(e83, research).

years(e83, 19).

salary(e83, 60500).

position(e83, manager).

employee(e84).

name(e84, laura).

gender(e84, female).

dept(e84, legal).

years(e84, 10).

salary(e84, 80000).

position(e84, staff).

employee(e85).

name(e85, victor).

gender(e85, male).

dept(e85, engineering).

years(e85, 20).

salary(e85, 67000).

position(e85, staff).

employee(e86).

name(e86, wendy).

gender(e86, female).

dept(e86, research).

years(e86, 13).

salary(e86, 31500).

position(e86, staff).

employee(e87).

name(e87, quentin).

gender(e87, male).

dept(e87, legal).

years(e87, 16).

salary(e87, 42000).

position(e87, staff).

employee(e88).

name(e88, mona).

gender(e88, male).

dept(e88, research).

years(e88, 15).

salary(e88, 52500).

position(e88, staff).

employee(e89).

name(e89, yolanda).

gender(e89, male).

dept(e89, engineering).

years(e89, 2).

salary(e89, 44000).

position(e89, staff).

employee(e90).

name(e90, yolanda).

gender(e90, female).

dept(e90, sales).

years(e90, 26).

salary(e90, 63000).

position(e90, staff).

employee(e91).

name(e91, fred).

gender(e91, female).

dept(e91, legal).

years(e91, 29).

salary(e91, 56500).

position(e91, staff).

employee(e92).

name(e92, jack).

gender(e92, female).

dept(e92, hr).

years(e92, 18).

salary(e92, 86000).

position(e92, staff).

employee(e93).

name(e93, fred).

gender(e93, female).

dept(e93, legal).

years(e93, 7).

salary(e93, 79500).

position(e93, staff).

employee(e94).

name(e94, quentin).

gender(e94, female).

dept(e94, engineering).

years(e94, 27).

salary(e94, 60500).

position(e94, staff).

employee(e95).

name(e95, derek).

gender(e95, female).

dept(e95, support).

years(e95, 27).

salary(e95, 71500).

position(e95, staff).

employee(e96).

name(e96, victor).

gender(e96, male).

dept(e96, sales).

years(e96, 5).

salary(e96, 77500).

position(e96, staff).

employee(e97).

name(e97, gina).

gender(e97, female).

dept(e97, research).

years(e97, 7).

salary(e97, 75500).

position(e97, staff).

employee(e98).

name(e98, gina).

gender(e98, female).

dept(e98, hr).

years(e98, 11).

salary(e98, 43500).

position(e98, staff).

employee(e99).

name(e99, ken).

gender(e99, male).

dept(e99, research).

years(e99, 6).

salary(e99, 49000).

position(e99, staff).

employee(e100).

name(e100, nick).

gender(e100, male).

dept(e100, accounting).

years(e100, 22).

salary(e100, 71000).

position(e100, staff).

employee(e101).

name(e101, derek).

gender(e101, male).

dept(e101, accounting).

years(e101, 4).

salary(e101, 39000).

position(e101, staff).

employee(e102).

name(e102, erin).

gender(e102, female).

dept(e102, research).

years(e102, 20).

salary(e102, 56000).

position(e102, staff).

employee(e103).

name(e103, trent).

gender(e103, male).

dept(e103, legal).

years(e103, 15).

salary(e103, 60500).

position(e103, staff).

employee(e104).

name(e104, ken).

gender(e104, male).

dept(e104, accounting).

years(e104, 9).

salary(e104, 74500).

position(e104, staff).

employee(e105).

name(e105, quentin).

gender(e105, female).

dept(e105, accounting).

years(e105, 27).

salary(e105, 66500).

position(e105, staff).

employee(e106).

name(e106, wendy).

gender(e106, male).

dept(e106, legal).

years(e106, 21).

salary(e106, 62500).

position(e106, staff).

employee(e107).

name(e107, nick).

gender(e107, male).

dept(e107, hr).

years(e107, 15).

salary(e107, 29500).

position(e107, staff).

employee(e108).

name(e108, heidi).

gender(e108, male).

dept(e108, legal).

years(e108, 25).

salary(e108, 42500).

position(e108, staff).

employee(e109).

name(e109, iris).

gender(e109, male).

dept(e109, sales).

years(e109, 3).

salary(e109, 57500).

position(e109, staff).

employee(e110).

name(e110, frank).

gender(e110, male).

dept(e110, support).

years(e110, 6).

salary(e110, 27000).

position(e110, staff).

employee(e111).

name(e111, olivia).

gender(e111, female).

dept(e111, support).

years(e111, 7).

salary(e111, 81500).

position(e111, staff).

employee(e112).

name(e112, jack).

gender(e112, female).

dept(e112, research).

years(e112, 15).

salary(e112, 71500).

position(e112, manager).

employee(e113).

name(e113, rupert).

gender(e113, female).

dept(e113, accounting).

years(e113, 9).

salary(e113, 39500).

position(e113, staff).

employee(e114).

name(e114, nick).

gender(e114, female).

dept(e114, research).

years(e114, 9).

salary(e114, 44500).

position(e114, staff).

employee(e115).

name(e115, derek).

gender(e115, female).

dept(e115, support).

years(e115, 3).

salary(e115, 53500).

position(e115, staff).

employee(e116).

name(e116, laura).

gender(e116, male).

dept(e116, accounting).

years(e116, 8).

salary(e116, 74000).

position(e116, staff).

employee(e117).

name(e117, hank).

gender(e117, female).

dept(e117, support).

years(e117, 13).

salary(e117, 33500).

position(e117, staff).

employee(e118).

name(e118, quentin).

gender(e118, male).

dept(e118, hr).

years(e118, 22).

salary(e118, 43000).

position(e118, staff).

employee(e119).

name(e119, amy).

gender(e119, male).

dept(e119, accounting).

years(e119, 9).

salary(e119, 68500).

position(e119, staff).

employee(e120).

name(e120, ella).

gender(e120, female).

dept(e120, legal).

years(e120, 10).

salary(e120, 71000).

position(e120, staff).
